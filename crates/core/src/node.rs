//! The per-virtual-node protocol state machine.
//!
//! A [`SkueueNode`] is one virtual node of the LDB running the Skueue
//! protocol.  It implements [`Actor`] for the simulation substrate and
//! realises Stages 1–4 of Section III (plus the stack variant of Section VI
//! and the join/leave handling of Section IV, see `join_leave.rs`):
//!
//! * **Stage 1** (`TIMEOUT` + `AGGREGATE`): buffer locally generated
//!   operations in the working batch `W`, wait until all aggregation-tree
//!   children have contributed their sub-batches, combine everything into
//!   `B`, remember the combination order, and forward `B` to the parent.
//! * **Stage 2** (`ASSIGN`): only at the anchor — hand out position
//!   intervals, order values and tickets from the `[first, last]` window.
//! * **Stage 3** (`SERVE`): split the received assignments back among the
//!   remembered sub-batches and forward them to the children; resolve the
//!   node's own requests.
//! * **Stage 4**: issue `PUT`/`GET` operations into the DHT, routed over the
//!   LDB; record request completions for the history.
//!
//! # Pipelined waves
//!
//! Stage 1 is *pipelined*: instead of a single implicit in-flight wave, a
//! node keeps a small ring of `WaveSlot`s tagged with a per-node wave
//! epoch, so it can combine and forward wave `k+1` while wave `k`'s
//! assignments (and the DHT operations they trigger) are still in flight —
//! the overlapping-phases idea of Skeap/Seap applied to Skueue's aggregation
//! tree.  Epochs travel in `Aggregate` and are echoed back in `Serve`, so a
//! node pairs assignments with the right wave even when serves are reordered
//! by asynchronous delivery; an `AggregateAck` credit keeps at most one
//! aggregate per child→parent channel in flight, which guarantees the parent
//! commits a child's waves to the anchor in epoch (= program) order.
//!
//! # Batched DHT routing
//!
//! Stage 4 is *batched*: every routed DHT operation a node would forward is
//! parked in a per-destination [`RouteBuffer`] and flushed at the end of the
//! visit as one `DhtBatch` message per neighbour per round; replies coalesce
//! the same way per requester (`DhtReplyBatch`).  Ops sharing the next
//! distance-halving hop — from a middle node there are only two virtual-edge
//! targets — therefore cost one message, which is exactly the aggregation
//! along shared routes the paper's congestion bound builds on.

use crate::anchor::{AnchorState, RunAssignment};
use crate::batch::{Batch, BatchOp};
use crate::config::{Mode, ProtocolConfig};
use crate::messages::{DhtOp, DhtReplyItem, PutMeta, RoutedDhtOp, SkueueMsg};
use skueue_dht::{Element, GetOutcome, NodeStore, Payload, SatisfiedGet, StoredEntry};
use skueue_overlay::{
    aggregation_child_set, aggregation_parent, route_step, ChildSet, LocalView, RouteAction,
    RouteBuffer, RouteProgress, VKind,
};
use skueue_shard::{ShardId, ShardMap};
use skueue_sim::actor::{Actor, Context};
use skueue_sim::ids::{NodeId, ProcessId, RequestId};
use skueue_sim::metrics::Histogram;
use skueue_trace::{TraceEvent, TraceId, TraceLog, TraceRecorder};
use skueue_verify::{OpKind, OpRecord, OpResult, OrderKey};
use std::collections::{HashMap, VecDeque};

/// Minimum number of rounds between two waves opened by the same node:
/// letting sub-batches that travel towards a shared ancestor land in the
/// same combined wave (instead of chasing each other one round apart) is
/// what re-creates the paper's aggregation along shared routes under
/// demand-driven waves.  `2` merges adjacent traffic while costing at most
/// one extra round of latency per level.
const WAVE_CADENCE: u64 = 2;

/// Metadata remembered for an outstanding `GET` this node issued: the
/// original request plus the order components the anchor assigned to it,
/// needed to stamp the completion record when the reply arrives.  Carries no
/// payload (dequeues have none), so it stays a small `Copy` value for any
/// payload type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct OutstandingGet {
    /// Round in which the request was issued.
    pub(crate) issued_round: u64,
    /// Anchor-assigned order value `value(op)`.
    pub(crate) order: u64,
    /// Epoch of the anchor wave that assigned the order value.
    pub(crate) wave: u64,
}

/// A locally generated request that has not been resolved yet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalOp<T = u64> {
    /// The request's identity.
    pub id: RequestId,
    /// Enqueue/push or dequeue/pop.
    pub kind: BatchOp,
    /// Payload (enqueues only; `T::default()` for dequeues).
    pub value: T,
    /// Round in which the request was generated.
    pub issued_round: u64,
}

/// Where a sub-batch of a combined wave came from.
#[derive(Debug, Clone)]
pub(crate) enum BatchSource {
    /// The node's own working batch (its own requests).
    Own(Batch),
    /// A child's sub-batch, tagged with the child's wave epoch (echoed back
    /// in the `Serve` so the child can match the assignments to the right
    /// in-flight wave).
    Child(NodeId, u64, Batch),
}

impl BatchSource {
    fn batch(&self) -> &Batch {
        match self {
            BatchSource::Own(b) | BatchSource::Child(_, _, b) => b,
        }
    }
}

/// One in-flight aggregation wave: the combined batch has been sent up the
/// tree (to `parent`, under this node's wave `epoch`) and its assignments
/// have not come back yet.  Only the combined batch's run count is kept —
/// the runs themselves travelled up in the `Aggregate` message and come back
/// as `Serve` assignments.
#[derive(Debug, Clone)]
pub(crate) struct WaveSlot {
    /// This node's wave epoch for the slot.
    pub(crate) epoch: u64,
    /// The parent the wave was sent to (new waves are held back while an
    /// older slot points at a different parent, so re-parenting can never
    /// reorder a node's waves at the anchor).
    pub(crate) parent: NodeId,
    /// Number of runs of the combined batch.
    pub(crate) num_runs: usize,
    /// The memorised combination order for the Stage 3 decomposition.
    pub(crate) sources: Vec<BatchSource>,
}

/// A `Serve` that arrived before the serves of older waves (asynchronous
/// delivery can reorder them); parked until its epoch reaches the front of
/// the slot ring.
#[derive(Debug, Clone)]
pub(crate) struct StashedServe {
    pub(crate) epoch: u64,
    pub(crate) runs: Vec<RunAssignment>,
}

/// Sub-batches received from aggregation-tree children and not yet combined
/// into a wave: one FIFO queue per child, each entry tagged with the child's
/// wave epoch.  With pipelining a child may legitimately have several
/// batches queued here.  Lane entries (and queue capacity) are retained
/// across waves, so steady-state pushes and pops do not touch the allocator.
#[derive(Debug, Clone, Default)]
pub(crate) struct ChildBatches {
    entries: Vec<(NodeId, VecDeque<(u64, Batch)>)>,
}

impl ChildBatches {
    /// True when at least one sub-batch from `child` is buffered.
    pub(crate) fn contains(&self, child: &NodeId) -> bool {
        self.entries
            .iter()
            .any(|(n, q)| n == child && !q.is_empty())
    }

    /// True when any sub-batch from any peer is buffered.
    pub(crate) fn has_any(&self) -> bool {
        self.entries.iter().any(|(_, q)| !q.is_empty())
    }

    /// Total number of buffered sub-batches.
    pub(crate) fn total(&self) -> usize {
        self.entries.iter().map(|(_, q)| q.len()).sum()
    }

    /// Buffers a sub-batch from `child` under its wave `epoch`, keeping the
    /// per-child queue in ascending epoch order.  Arrival order is *almost*
    /// epoch order (the aggregate credit serialises each channel), but an
    /// absorb hand-over races the draining parent's forwarded aggregates on
    /// independently delayed messages — and commit order to the anchor must
    /// stay epoch (= the child's program) order regardless.
    pub(crate) fn push(&mut self, child: NodeId, epoch: u64, batch: Batch) {
        for (n, q) in &mut self.entries {
            if *n == child {
                let pos = q.iter().position(|(e, _)| *e > epoch).unwrap_or(q.len());
                q.insert(pos, (epoch, batch));
                return;
            }
        }
        self.entries.push((child, VecDeque::from([(epoch, batch)])));
    }

    /// Pops the oldest queued sub-batch of every peer that has one (in
    /// first-contact order), appending them as [`BatchSource::Child`]
    /// entries.  At most *one* batch per child per wave: run-length batch
    /// combination is element-wise (run `i` of the combined batch is the
    /// concatenation of every source's run `i`), so two sub-batches of the
    /// same child in one wave would interleave that child's operations and
    /// invert its program order in `≺` — distinct children carry no mutual
    /// order constraint, consecutive waves of one child do.  Peers beyond
    /// the current tree children are included on purpose: after an absorb
    /// hand-over or a re-parenting, batches from former children must still
    /// be combined and served (by node id) or their senders' wave slots
    /// would never drain.
    pub(crate) fn pop_oldest_into(&mut self, sources: &mut Vec<BatchSource>) {
        for (child, q) in &mut self.entries {
            if let Some((epoch, batch)) = q.pop_front() {
                sources.push(BatchSource::Child(*child, epoch, batch));
            }
        }
    }

    /// Drains every buffered `(child, epoch, sub-batch)`, preserving each
    /// child's FIFO order (used for the leave hand-over).
    pub(crate) fn drain_all(&mut self) -> Vec<(NodeId, u64, Batch)> {
        let mut out = Vec::with_capacity(self.total());
        for (child, q) in &mut self.entries {
            for (epoch, batch) in q.drain(..) {
                out.push((*child, epoch, batch));
            }
        }
        out
    }
}

/// Membership status of a virtual node (Section IV).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Role {
    /// Fully integrated member of the LDB.
    Active,
    /// Waiting to be integrated; `responsible` is the node relaying for us
    /// once the join request has been answered.
    Joining {
        /// The node responsible for this joiner (if already discovered).
        responsible: Option<NodeId>,
    },
    /// Granted leave and absorbed; every received message is forwarded to the
    /// absorber.
    Draining {
        /// The absorbing node (our former predecessor).
        absorber: NodeId,
    },
}

/// A joining node this node is responsible for (Section IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct JoinerRecord {
    pub(crate) info: skueue_overlay::NeighborInfo,
    pub(crate) handed_over: bool,
}

/// A leaver this node has granted and will absorb during the next update
/// phase (Section IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct LeaverRecord {
    pub(crate) info: skueue_overlay::NeighborInfo,
    pub(crate) absorb_requested: bool,
}

/// State of an ongoing update phase at this node.
#[derive(Debug, Clone, Default)]
pub(crate) struct UpdatePhase {
    /// The anchor's phase number this participation belongs to; control
    /// messages of other phases are ignored (or, for a younger flag,
    /// acknowledged without duties).
    pub(crate) phase: u64,
    /// Children (at flag time) we still expect an `UpdateAck` from.
    pub(crate) awaiting_child_acks: Vec<NodeId>,
    /// Parent (at flag time) to ack to once done.
    pub(crate) old_parent: Option<NodeId>,
    /// Joiners we still expect an `IntegrateAck` from.
    pub(crate) awaiting_integrate_acks: usize,
    /// Leavers we still expect `AbsorbData` from.
    pub(crate) awaiting_absorb_data: usize,
    /// Whether our own ack has been sent already.
    pub(crate) acked: bool,
}

/// Counters a node keeps about its own protocol activity.
#[derive(Debug, Clone, Default)]
pub struct NodeStats {
    /// Number of batches this node sent to its parent (or processed as the
    /// anchor).
    pub batches_sent: u64,
    /// Distribution of the sizes of those batches (Theorem 18 / 20).
    pub batch_sizes: Histogram,
    /// Number of DHT operations this node issued.
    pub dht_ops_issued: u64,
    /// Distribution of DHT routing hop counts per operation, observed at
    /// delivery (only recorded at the responsible node).
    pub dht_hops: Histogram,
    /// Number of `DhtBatch` messages this node sent.
    pub dht_batches_sent: u64,
    /// Distribution of DHT operations carried per `DhtBatch` message this
    /// node sent — the direct measure of the per-destination coalescing win.
    pub dht_ops_per_message: Histogram,
    /// Distribution of the number of this node's aggregation waves in flight,
    /// sampled whenever a wave is opened (`max ≥ 2` means the pipeline
    /// actually overlapped waves).
    pub waves_in_flight: Histogram,
    /// `DhtReply` entries that arrived for a request this node does not know
    /// — a reply can legitimately race its requester's departure during
    /// join/leave, so this is a counter rather than an assertion.
    pub unmatched_dht_replies: u64,
    /// Number of requests this node generated.
    pub requests_generated: u64,
    /// Number of requests resolved by local combining (stack only).
    pub locally_combined: u64,
}

/// One virtual node running the Skueue protocol, generic over the element
/// payload type `T` it stores and routes (the protocol never inspects
/// payloads — they move through batches, DHT routing and completion records
/// untouched).
#[derive(Debug)]
pub struct SkueueNode<T: Payload = u64> {
    pub(crate) cfg: ProtocolConfig,
    pub(crate) hasher: skueue_overlay::LabelHasher,
    pub(crate) view: LocalView,
    pub(crate) role: Role,
    /// The anchor shard this node belongs to (0 in unsharded deployments).
    /// Everything the node does — its cycle, its aggregation tree, its DHT
    /// interval, its anchor — lives inside this shard.
    pub(crate) shard: ShardId,
    /// The deployment's shard layout (pure function of `(shards,
    /// hash_seed)`); maps the anchor's shard-local positions into the
    /// shard's interval of the global position keyspace.
    pub(crate) shard_map: ShardMap,
    /// Anchor state, present only at the current shard anchor.
    pub(crate) anchor: Option<AnchorState>,

    // --- Stage 1 state ------------------------------------------------------
    pub(crate) own_batch: Batch,
    pub(crate) own_log: Vec<LocalOp<T>>,
    pub(crate) child_batches: ChildBatches,
    /// In-flight waves, oldest first (bounded by the configured pipeline
    /// depth).
    pub(crate) slots: VecDeque<WaveSlot>,
    /// The wave epoch of the most recently opened wave (0 before the first).
    pub(crate) next_epoch: u64,
    /// Round in which this node last opened a wave (wave-merging cadence).
    pub(crate) last_wave_round: u64,
    /// True while the most recent `Aggregate` has not been confirmed by the
    /// parent (at most one per channel keeps commits in epoch order).
    pub(crate) aggregate_unacked: bool,
    /// Serves that arrived ahead of older waves (asynchronous reordering).
    pub(crate) serve_stash: Vec<StashedServe>,
    pub(crate) suspended: bool,
    /// Pool of batch-source lists, reused across aggregation waves (one
    /// list per concurrently in-flight wave ends up here once served).
    pub(crate) sources_pool: Vec<Vec<BatchSource>>,
    /// Scratch for the Stage 3 run cursors, reused across serves.
    pub(crate) cursors_scratch: Vec<RunAssignment>,
    /// Scratch for the node's own run share in Stage 3, reused across serves.
    pub(crate) runs_scratch: Vec<RunAssignment>,

    // --- Stage 4 state ------------------------------------------------------
    pub(crate) store: NodeStore<T>,
    pub(crate) outstanding_gets: HashMap<RequestId, OutstandingGet>,
    pub(crate) outstanding_dht: u64,
    /// Per-destination coalescing buffer for routed DHT ops; flushed as one
    /// `DhtBatch` per neighbour at the end of every visit.
    pub(crate) route_buffer: RouteBuffer<RoutedDhtOp<T>>,
    /// Per-requester coalescing buffer for GET replies; flushed as one
    /// `DhtReplyBatch` per requester at the end of every visit.
    pub(crate) reply_buffer: RouteBuffer<DhtReplyItem<T>>,
    /// Scratch for satisfied parked GETs, reused across PUT applications.
    pub(crate) satisfied_scratch: Vec<SatisfiedGet<T>>,

    // --- Stack local combining ----------------------------------------------
    /// Ids of the unsent pushes eligible for local matching.  Markers only:
    /// the payloads stay in `own_log` (the matched push is always its last
    /// entry), so no payload is ever cloned onto this stack.
    pub(crate) local_stack: Vec<RequestId>,
    /// Completed-but-unordered combined pairs, keyed by the seq of the own
    /// request whose order value they must follow.
    pub(crate) pairs_by_anchor: HashMap<u64, Vec<OpRecord<T>>>,
    /// Major order value of this node's most recently ordered own request.
    pub(crate) last_order_major: u64,
    /// Minor counter for combined pairs anchored at `last_order_major`.
    pub(crate) minor_counter: u64,

    // --- Membership (Section IV) --------------------------------------------
    /// Which of the emulating process's three virtual nodes are integrated
    /// members (indexed by `VKind::index`).  A node only treats integrated
    /// siblings as aggregation-tree children.
    pub(crate) sibling_integrated: [bool; 3],
    /// Bootstrap contact used by a joining node to send its `JOIN()` request.
    pub(crate) bootstrap: Option<NodeId>,
    /// Whether the join request has been sent already.
    pub(crate) join_sent: bool,
    /// DHT operations received while still joining; re-routed after
    /// integration.
    pub(crate) deferred_dht: Vec<RoutedDhtOp<T>>,
    pub(crate) joiners: Vec<JoinerRecord>,
    pub(crate) pending_leavers: Vec<LeaverRecord>,
    /// An absorber asked for our state while waves were still in flight; the
    /// hand-over happens as soon as every slot has been served.
    pub(crate) absorb_deferred: Option<NodeId>,
    /// Joiners this node integrated during the current update phase; the
    /// phase-ending `UpdateOver` is relayed to them explicitly, because
    /// their tree parents may not have processed the joiners'
    /// `SiblingStatus` yet and would otherwise skip them in the broadcast.
    pub(crate) integrated_joiners: Vec<NodeId>,
    /// Leavers this node absorbed during the current update phase; they are
    /// out of the new tree, so the phase-ending `UpdateOver` is forwarded to
    /// them explicitly (they relay it down their old subtrees — e.g. to a
    /// sibling that could not leave yet).
    pub(crate) absorbed_leavers: Vec<NodeId>,
    pub(crate) wants_to_leave: bool,
    pub(crate) leave_granted: bool,
    pub(crate) leave_requested: bool,
    pub(crate) pending_join_count: u64,
    pub(crate) pending_leave_count: u64,
    pub(crate) update: Option<UpdatePhase>,
    /// Highest update phase this node has participated in — the phase
    /// numbers a node enters must be monotone (checked by a `debug_assert`
    /// in `enter_update_phase`; mirrored by the model checker's
    /// phase-monotonicity safety property).
    pub(crate) last_update_phase: u64,

    // --- Outputs --------------------------------------------------------------
    pub(crate) completed: Vec<OpRecord<T>>,
    pub(crate) stats: NodeStats,
    /// Lane-local lifecycle event recorder (a no-op at `TraceLevel::Off`:
    /// every emission site guards on [`TraceRecorder::is_off`], and the off
    /// recorder holds a zero-capacity buffer).
    pub(crate) trace: TraceRecorder,
    /// Number of `own_log` prefix entries already committed to an
    /// aggregation wave (and therefore already carrying a `WaveJoin` trace
    /// event); the uncommitted suffix joins the next wave this node opens.
    /// Only maintained for tracing — the protocol itself never reads it.
    pub(crate) wave_committed: usize,
}

impl<T: Payload> SkueueNode<T> {
    /// Creates a node with the given configuration and initial neighbourhood
    /// view. `shard` is the anchor shard the node's process belongs to;
    /// `is_anchor` must be true exactly for the leftmost node of the shard's
    /// initial topology.
    pub fn new(cfg: ProtocolConfig, shard: ShardId, view: LocalView, is_anchor: bool) -> Self {
        let hasher = cfg.hasher();
        let own_batch = Self::fresh_batch(&cfg);
        let shard_map = ShardMap::new(cfg.effective_shards() as u32, cfg.hash_seed);
        SkueueNode {
            cfg,
            hasher,
            view,
            role: Role::Active,
            shard,
            shard_map,
            anchor: if is_anchor {
                Some(AnchorState::new())
            } else {
                None
            },
            own_batch,
            own_log: Vec::new(),
            child_batches: ChildBatches::default(),
            slots: VecDeque::new(),
            next_epoch: 0,
            last_wave_round: 0,
            aggregate_unacked: false,
            serve_stash: Vec::new(),
            suspended: false,
            sources_pool: Vec::new(),
            cursors_scratch: Vec::new(),
            runs_scratch: Vec::new(),
            store: NodeStore::new(),
            outstanding_gets: HashMap::new(),
            outstanding_dht: 0,
            route_buffer: RouteBuffer::new(),
            reply_buffer: RouteBuffer::new(),
            satisfied_scratch: Vec::new(),
            local_stack: Vec::new(),
            pairs_by_anchor: HashMap::new(),
            last_order_major: 0,
            minor_counter: 0,
            sibling_integrated: [true; 3],
            bootstrap: None,
            join_sent: false,
            deferred_dht: Vec::new(),
            joiners: Vec::new(),
            pending_leavers: Vec::new(),
            absorb_deferred: None,
            integrated_joiners: Vec::new(),
            absorbed_leavers: Vec::new(),
            wants_to_leave: false,
            leave_granted: false,
            leave_requested: false,
            pending_join_count: 0,
            pending_leave_count: 0,
            update: None,
            last_update_phase: 0,
            completed: Vec::new(),
            stats: NodeStats::default(),
            trace: TraceRecorder::new(cfg.trace_level, 0, shard),
            wave_committed: 0,
        }
    }

    /// Creates a node that starts in the joining state (not yet part of its
    /// shard's cycle); `view` holds the node's own identity with placeholder
    /// neighbours.
    pub fn new_joining(cfg: ProtocolConfig, shard: ShardId, view: LocalView) -> Self {
        let mut node = Self::new(cfg, shard, view, false);
        node.role = Role::Joining { responsible: None };
        // Siblings of a joining process integrate one by one; each announces
        // itself via `SiblingStatus` when it does.
        node.sibling_integrated = [false; 3];
        node
    }

    fn fresh_batch(cfg: &ProtocolConfig) -> Batch {
        match cfg.mode {
            Mode::Queue => Batch::empty(),
            Mode::Stack => Batch::empty_stack(),
        }
    }

    // ---------------------------------------------------------------------
    // Public accessors used by the cluster driver.
    // ---------------------------------------------------------------------

    /// The node's virtual identity.
    pub fn vid(&self) -> skueue_overlay::VirtualId {
        self.view.me.vid
    }

    /// The emulating process.
    pub fn process(&self) -> ProcessId {
        self.view.me.vid.process
    }

    /// The node's label.
    pub fn label(&self) -> skueue_overlay::Label {
        self.view.me.label
    }

    /// The node's current neighbourhood view.
    pub fn view(&self) -> &LocalView {
        &self.view
    }

    /// Current membership role.
    pub fn role(&self) -> &Role {
        &self.role
    }

    /// True if this node currently holds its shard's anchor state.
    pub fn is_anchor_node(&self) -> bool {
        self.anchor.is_some()
    }

    /// The anchor shard this node belongs to (0 when unsharded).
    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// The anchor state, if this node is the anchor.
    pub fn anchor_state(&self) -> Option<&AnchorState> {
        self.anchor.as_ref()
    }

    /// Number of elements stored in this node's DHT partition.
    pub fn stored_elements(&self) -> usize {
        self.store.len()
    }

    /// Number of parked GETs at this node.
    pub fn parked_gets(&self) -> usize {
        self.store.pending_gets()
    }

    /// This node's DHT partition (diagnostics and tests).
    pub fn store(&self) -> &NodeStore<T> {
        &self.store
    }

    /// Sizes of the node's transient Stage-4 buffers
    /// `(route_buffer, reply_buffer, deferred_dht)` — all three must be
    /// empty in a quiescent system (diagnostics and tests).
    pub fn stage4_buffer_sizes(&self) -> (usize, usize, usize) {
        (
            self.route_buffer.len(),
            self.reply_buffer.len(),
            self.deferred_dht.len(),
        )
    }

    /// Protocol statistics.
    pub fn stats(&self) -> &NodeStats {
        &self.stats
    }

    /// True while an update phase suspends batching at this node.
    pub fn is_suspended(&self) -> bool {
        self.suspended
    }

    /// The update phase this node is currently participating in, if any
    /// (model-checker conformance projection).
    pub fn update_phase(&self) -> Option<u64> {
        self.update.as_ref().map(|u| u.phase)
    }

    /// True while this node's most recent `Aggregate` is unconfirmed — the
    /// channel-serialisation credit is out (model-checker conformance
    /// projection).
    pub fn has_unacked_aggregate(&self) -> bool {
        self.aggregate_unacked
    }

    /// Number of this node's aggregation waves currently in flight.
    pub fn waves_in_flight(&self) -> usize {
        self.slots.len()
    }

    /// Drains the completed-operation records collected since the last call.
    pub fn drain_completed(&mut self) -> Vec<OpRecord<T>> {
        std::mem::take(&mut self.completed)
    }

    /// True when completion records are waiting to be drained.
    pub fn has_completed(&self) -> bool {
        !self.completed.is_empty()
    }

    /// Appends the completed-operation records to `out`, keeping this node's
    /// buffer (and its capacity) in place — the allocation-free form of
    /// [`Self::drain_completed`] used by the cluster's per-round collection.
    pub fn drain_completed_into(&mut self, out: &mut Vec<OpRecord<T>>) {
        out.append(&mut self.completed);
    }

    /// The node's lifecycle-trace recorder (cluster wiring: the driver
    /// re-tags it with the node's dense index via [`TraceRecorder::attach`]).
    pub fn trace_recorder_mut(&mut self) -> &mut TraceRecorder {
        &mut self.trace
    }

    /// True when lifecycle-trace events are waiting to be drained.
    pub fn has_trace_events(&self) -> bool {
        self.trace.pending() > 0
    }

    /// Moves this node's buffered lifecycle-trace events into `log`,
    /// retaining the lane-local buffer — called from the cluster's
    /// deterministic per-round sweep, right next to the completion drain.
    pub fn drain_trace_into(&mut self, log: &mut TraceLog) {
        self.trace.drain_into(log);
    }

    /// The trace identity of a request: origin process and per-origin seq.
    #[inline]
    fn tid(id: RequestId) -> TraceId {
        TraceId::new(id.origin.0, id.seq)
    }

    /// One-line diagnostic summary of the node's protocol state (used by
    /// tests and the experiment harness when something stalls).
    pub fn diagnostics(&self) -> String {
        let children = self.tree_children().to_vec();
        let missing: Vec<NodeId> = children
            .iter()
            .copied()
            .filter(|c| !self.child_batches.contains(c))
            .collect();
        let update = match &self.update {
            Some(u) => format!(
                "update(phase={},child_acks={:?},integrate={},absorb={},acked={})",
                u.phase,
                u.awaiting_child_acks,
                u.awaiting_integrate_acks,
                u.awaiting_absorb_data,
                u.acked
            ),
            None => "no-update".to_string(),
        };
        let slots: Vec<(u64, NodeId)> = self.slots.iter().map(|s| (s.epoch, s.parent)).collect();
        format!(
            "{} role={:?} suspended={} anchor={} parent={:?} slots={:?} unacked={} stashed_serves={} queued_child_batches={} children={:?} missing_child_batches={:?} joiners={} leavers={} own_log={} outstanding_gets={} outstanding_dht={} leave(want={},req={},granted={},absorb_deferred={:?}) {}",
            self.view.me.vid,
            self.role,
            self.suspended,
            self.anchor.is_some(),
            self.tree_parent(),
            slots,
            self.aggregate_unacked,
            self.serve_stash.len(),
            self.child_batches.total(),
            children,
            missing,
            self.joiners.len(),
            self.pending_leavers.len(),
            self.own_log.len(),
            self.outstanding_gets.len(),
            self.outstanding_dht,
            self.wants_to_leave,
            self.leave_requested,
            self.leave_granted,
            self.absorb_deferred,
            update
        )
    }

    /// Number of requests generated at this node that have not completed yet.
    pub fn open_requests(&self) -> usize {
        self.own_log.len() + self.outstanding_gets.len()
    }

    // ---------------------------------------------------------------------
    // Request generation (driver-side local operation).
    // ---------------------------------------------------------------------

    /// Generates a queue/stack operation at this node.  This is a *local*
    /// action of the emulating process, not a message.
    pub fn generate_op(&mut self, id: RequestId, kind: BatchOp, value: T, round: u64) {
        debug_assert!(
            matches!(self.role, Role::Active),
            "only active nodes generate requests"
        );
        self.stats.requests_generated += 1;
        if !self.trace.is_off() {
            self.trace.emit(TraceEvent::Issued {
                op: Self::tid(id),
                insert: kind == BatchOp::Enqueue,
                round,
            });
        }
        let op = LocalOp {
            id,
            kind,
            value,
            issued_round: round,
        };

        if self.cfg.is_stack() && self.cfg.local_combining {
            match kind {
                BatchOp::Enqueue => {
                    self.local_stack.push(op.id);
                    self.own_log.push(op);
                    self.own_batch.push_op(kind);
                    return;
                }
                BatchOp::Dequeue => {
                    if let Some(push_id) = self.local_stack.pop() {
                        // The matched push is necessarily the most recently
                        // issued unsent operation: undo its batching and
                        // complete both requests immediately (Section VI).
                        let push = self.own_log.pop().expect("push must still be unsent");
                        debug_assert_eq!(push.id, push_id);
                        // The matched push was issued after the last wave
                        // opened (`local_stack` only holds unsent pushes), so
                        // removing it never touches the committed prefix.
                        debug_assert!(self.wave_committed <= self.own_log.len());
                        self.own_batch.pop_last_op();
                        self.stats.locally_combined += 2;
                        // Pairs that were anchored to the removed push must be
                        // re-anchored together with the new pair (the push
                        // will never receive an anchor order value of its
                        // own).  The push precedes and the pop follows every
                        // record in the removed bucket, so placing them at
                        // the ends keeps the whole list in issue (= seq)
                        // order without re-sorting.
                        let mut records = self
                            .pairs_by_anchor
                            .remove(&push.id.seq)
                            .unwrap_or_default();
                        let [push_rec, pop_rec] = self.make_combined_pair(push, op, round);
                        records.insert(0, push_rec);
                        records.push(pop_rec);
                        self.reanchor_pairs(records, round);
                        return;
                    }
                    // No unsent push available: the pop becomes part of the
                    // residual batch like any other operation.
                    self.own_log.push(op);
                    self.own_batch.push_op(kind);
                    return;
                }
            }
        }

        self.own_log.push(op);
        self.own_batch.push_op(kind);
    }

    /// Builds the completion records of a locally combined push/pop pair.
    /// The order keys are placeholders; [`Self::reanchor_pairs`] (directly or
    /// via [`Self::note_order_assigned`]) fills in the final keys so that the
    /// pair ends up adjacent in `≺`, right after the issuing process's most
    /// recent anchor-ordered request.
    fn make_combined_pair(
        &self,
        push: LocalOp<T>,
        pop: LocalOp<T>,
        round: u64,
    ) -> [OpRecord<T>; 2] {
        let origin = self.process();
        [
            OpRecord {
                id: push.id,
                kind: OpKind::Enqueue,
                value: push.value.clone(),
                result: OpResult::Enqueued,
                order: OrderKey::local(0, origin, 0),
                issued_round: push.issued_round,
                completed_round: round,
            },
            OpRecord {
                id: pop.id,
                kind: OpKind::Dequeue,
                value: push.value,
                result: OpResult::Returned(push.id),
                order: OrderKey::local(0, origin, 0),
                issued_round: pop.issued_round,
                completed_round: round,
            },
        ]
    }

    /// Attaches locally combined records to the request whose order value
    /// they must follow, or emits them right away when that order is already
    /// known.  Records within one anchor bucket are kept in issue order (the
    /// local execution order), which is itself a valid sequential stack
    /// execution.
    ///
    /// `records` arrives in issue (= seq) order, and every record is newer
    /// than anything already in the target bucket (re-anchoring only moves
    /// records to an *older* anchor, see [`Self::generate_op`]), so a plain
    /// append preserves the bucket's sort order — no re-sorting, which the
    /// old `extend` + `sort_by_key` pattern paid on every combined pair.
    fn reanchor_pairs(&mut self, records: Vec<OpRecord<T>>, _round: u64) {
        debug_assert!(
            records.windows(2).all(|w| w[0].id.seq < w[1].id.seq),
            "combined records must arrive in issue order"
        );
        if let Some(anchor_op) = self.own_log.last() {
            let bucket = self.pairs_by_anchor.entry(anchor_op.id.seq).or_default();
            debug_assert!(
                match (bucket.last(), records.first()) {
                    (Some(last), Some(first)) => last.id.seq < first.id.seq,
                    _ => true,
                },
                "re-anchored records must be newer than the bucket's contents"
            );
            bucket.extend(records);
        } else {
            let origin = self.process();
            for mut record in records {
                self.minor_counter += 1;
                record.order = OrderKey::local(self.last_order_major, origin, self.minor_counter);
                self.completed.push(record);
            }
        }
    }

    // ---------------------------------------------------------------------
    // Aggregation-tree helpers.
    // ---------------------------------------------------------------------

    /// The node's current aggregation-tree parent (None for the anchor).
    pub(crate) fn tree_parent(&self) -> Option<NodeId> {
        aggregation_parent(
            self.view.kind(),
            self.view.is_anchor(),
            self.view.sibling(VKind::Left).node,
            self.view.sibling(VKind::Middle).node,
            self.view.pred.node,
        )
    }

    /// The node's current aggregation-tree children (inline, no allocation —
    /// this runs on every `TIMEOUT` of every node).
    ///
    /// Sibling children (the process's own middle/right node) are only
    /// counted while they are integrated members — waiting for a sub-batch
    /// from a joining or draining sibling would deadlock the wave.
    pub(crate) fn tree_children(&self) -> ChildSet<NodeId> {
        let middle = self.view.sibling(VKind::Middle).node;
        let right = self.view.sibling(VKind::Right).node;
        let raw = aggregation_child_set(
            self.view.kind(),
            right,
            middle,
            self.view.succ.node,
            self.view.succ.kind(),
            self.view.successor_wraps(),
        );
        let mut children = ChildSet::new();
        for &n in raw.iter() {
            if n == self.view.me.node {
                continue;
            }
            let integrated = if n == middle && n != self.view.succ.node {
                self.sibling_integrated[VKind::Middle.index()]
            } else if n == right && n != self.view.succ.node {
                self.sibling_integrated[VKind::Right.index()]
            } else {
                true
            };
            if integrated {
                children.push(n);
            }
        }
        children
    }

    // ---------------------------------------------------------------------
    // Stage 1: batch aggregation (pipelined waves).
    // ---------------------------------------------------------------------

    /// True when this node may open a new wave towards `parent`: a free
    /// slot, no unconfirmed aggregate, and no older slot addressed to a
    /// *different* parent (after re-parenting, older waves must fully drain
    /// first so the anchor keeps seeing this node's waves in epoch order).
    /// The anchor (`parent == None`) serves itself synchronously and must
    /// not overtake waves it still has in flight from before it adopted the
    /// anchor state.
    fn may_open_wave(&self, parent: Option<NodeId>) -> bool {
        if self.aggregate_unacked {
            return false;
        }
        match parent {
            Some(p) => {
                self.slots.len() < self.cfg.effective_pipeline_depth()
                    && self.slots.iter().all(|s| s.parent == p)
            }
            None => self.slots.is_empty(),
        }
    }

    /// True when this node has anything a wave would carry: own operations,
    /// join/leave counters it is responsible for, or queued child
    /// sub-batches.  Queue waves are *demand-driven* — a quiet node opens
    /// none and goes fully quiescent, which is what keeps large mostly-idle
    /// systems cheap.  (Queue correctness does not need the strictly
    /// periodic empty waves of the paper's round model: serves are matched
    /// per child by wave epoch, so a quiet child's next batch simply rides a
    /// later wave.)
    fn has_wave_work(&self) -> bool {
        !self.own_batch.has_no_ops()
            || self.pending_join_count > 0
            || self.pending_leave_count > 0
            || self.child_batches.has_any()
    }

    /// True when this node must run the *strict* wave lockstep of Section VI
    /// instead of demand-driven waves: every node contributes a (possibly
    /// empty) sub-batch to every wave, and a parent combines only when all
    /// children contributed.  Composed with the per-node stage-4 barrier
    /// this yields a global barrier — the anchor cannot assign any wave
    /// `k+1` operation before *every* wave-`k` DHT operation completed —
    /// which is exactly what the stack's ticket matching needs: without it,
    /// a later pop generation's `GET` can steal the element an earlier
    /// generation's still-outstanding `GET` is entitled to on a reused
    /// position.
    fn strict_waves(&self) -> bool {
        self.cfg.stage4_barrier
    }

    fn try_send_batch(&mut self, ctx: &mut Context<SkueueMsg<T>>) {
        if !matches!(self.role, Role::Active) {
            return;
        }
        if self.suspended {
            // Update phase: new own waves are suspended, but in-flight waves
            // queued below this node must keep moving (see
            // [`Self::try_drain_wave`]).
            self.try_drain_wave(ctx);
            return;
        }
        if self.strict_waves() {
            // Global lockstep: wait for a (possibly empty) sub-batch from
            // every current child before combining.
            let children = self.tree_children();
            if !children.iter().all(|c| self.child_batches.contains(c)) {
                return;
            }
        } else {
            if !self.has_wave_work() {
                return;
            }
            // Wave-merging cadence: opening at most one wave every other
            // round lets sub-batches travelling towards the same ancestor
            // land in one combined wave instead of chasing each other one
            // round apart (demand-driven waves otherwise never merge).
            if self.next_epoch > 0 && ctx.round() < self.last_wave_round + WAVE_CADENCE {
                return;
            }
        }
        if self.cfg.stage4_barrier && self.outstanding_dht > 0 {
            return;
        }
        let parent = if self.anchor.is_some() {
            None
        } else {
            match self.tree_parent() {
                Some(p) => Some(p),
                // Leftmost node that has not received the anchor state yet
                // (anchor hand-off in flight): keep everything in the
                // working state and retry next timeout.
                None => return,
            }
        };
        if !self.may_open_wave(parent) {
            return;
        }
        self.open_wave(parent, false, ctx);
    }

    /// Update-phase wave draining: while this node is suspended, sub-batches
    /// queued from children (sent before their senders saw the update flag)
    /// are still combined — *without* committing this node's own operations —
    /// and forwarded, so every in-flight wave keeps moving toward the anchor.
    /// Without this, a leaver whose younger wave is parked below a suspended
    /// ancestor could never free its slots, and the update phase (which
    /// waits for the leaver's `AbsorbData`) would deadlock.
    fn try_drain_wave(&mut self, ctx: &mut Context<SkueueMsg<T>>) {
        if !self.child_batches.has_any() {
            return;
        }
        // The stack's stage-4 barrier applies to drain waves too: a node
        // (in particular the anchor) must not commit further waves while its
        // own DHT operations are unresolved, or a later pop generation could
        // be assigned against elements an outstanding GET is entitled to.
        if self.cfg.stage4_barrier && self.outstanding_dht > 0 {
            return;
        }
        let parent = if self.anchor.is_some() {
            None
        } else {
            match self.tree_parent() {
                Some(p) => Some(p),
                None => return,
            }
        };
        if !self.may_open_wave(parent) {
            return;
        }
        self.open_wave(parent, true, ctx);
    }

    /// Combines the current sources into one wave and commits it: as the
    /// anchor by assigning and serving immediately (Stage 2+3), otherwise by
    /// occupying a [`WaveSlot`] and forwarding the combined batch up the
    /// tree.  `drain` waves (update phase) exclude the node's own working
    /// batch and join/leave counters.
    fn open_wave(&mut self, parent: Option<NodeId>, drain: bool, ctx: &mut Context<SkueueMsg<T>>) {
        let own = if drain {
            Self::fresh_batch(&self.cfg)
        } else {
            let own = std::mem::replace(&mut self.own_batch, Self::fresh_batch(&self.cfg));
            // Every unsent push is now committed to the aggregation path and
            // can no longer be combined locally.
            self.local_stack.clear();
            if !self.trace.is_off() {
                let round = ctx.round();
                for op in &self.own_log[self.wave_committed..] {
                    self.trace.emit(TraceEvent::WaveJoin {
                        op: Self::tid(op.id),
                        round,
                    });
                }
            }
            self.wave_committed = self.own_log.len();
            own
        };

        // Combine own batch + queued children sub-batches in a fixed order.
        // The sub-batches are *moved* into the source list (they are needed
        // for the Stage 3 decomposition); the combined batch sums their runs
        // without cloning any of them.
        let mut sources = self.sources_pool.pop().unwrap_or_default();
        debug_assert!(sources.is_empty());
        sources.push(BatchSource::Own(own));
        self.child_batches.pop_oldest_into(&mut sources);

        let mut combined = Batch::combine_all(
            self.own_batch.first_run(),
            sources.iter().map(|s| s.batch()),
        );
        if !drain {
            // Join/leave counters this node is itself responsible for.
            combined.joins += self.pending_join_count;
            combined.leaves += self.pending_leave_count;
            self.pending_join_count = 0;
            self.pending_leave_count = 0;
        }

        self.stats.batches_sent += 1;
        self.stats.batch_sizes.record(combined.size() as u64);

        self.last_wave_round = ctx.round();
        match parent {
            None => {
                // Stage 2 happens right here: the anchor serves itself.
                let mut anchor = self.anchor.take().expect("anchor path");
                let assignments = anchor.assign_wave(&combined, self.cfg.mode);
                if !self.trace.is_off() {
                    // One instant per (shard, wave): the boundary between the
                    // aggregation and assignment stages for every op of this
                    // wave (all runs of one wave share the epoch).
                    if let Some(run) = assignments.first() {
                        self.trace.emit(TraceEvent::WaveAssigned {
                            wave: run.wave,
                            round: ctx.round(),
                        });
                    }
                }
                // Churn carried by waves assigned during an update phase is
                // accumulated (not dropped); it triggers the *next* phase.
                let enter_update = if !drain && self.update.is_none() {
                    anchor.take_update_decision(self.cfg.update_threshold)
                } else {
                    None
                };
                self.anchor = Some(anchor);
                self.serve_sources(&assignments, &mut sources, ctx);
                self.sources_pool.push(sources);
                if let Some(phase) = enter_update {
                    self.enter_update_phase(phase, None, ctx);
                }
            }
            Some(parent) => {
                self.next_epoch += 1;
                let epoch = self.next_epoch;
                self.slots.push_back(WaveSlot {
                    epoch,
                    parent,
                    num_runs: combined.num_runs(),
                    sources,
                });
                self.stats.waves_in_flight.record(self.slots.len() as u64);
                // FIFO transports cannot reorder a channel, so the credit
                // round-trip is skipped entirely.
                self.aggregate_unacked = !self.cfg.fifo_channels;
                ctx.send(
                    parent,
                    SkueueMsg::Aggregate {
                        child: self.view.me.node,
                        epoch,
                        batch: combined,
                    },
                );
            }
        }
    }

    // ---------------------------------------------------------------------
    // Stage 3: decomposition and serving.
    // ---------------------------------------------------------------------

    /// Splits the run assignments for the combined batch among its sources,
    /// in combination order (the inlined, scratch-reusing form of
    /// [`crate::interval::decompose`]): each source takes its share of every
    /// run front-to-back.  Sub-assignments for children are forwarded; the
    /// node's own share is resolved locally.  `sources` is drained — the
    /// caller parks the emptied vector back in [`Self::sources_pool`].
    fn serve_sources(
        &mut self,
        assignments: &[RunAssignment],
        sources: &mut Vec<BatchSource>,
        ctx: &mut Context<SkueueMsg<T>>,
    ) {
        let mut cursors = std::mem::take(&mut self.cursors_scratch);
        cursors.clear();
        cursors.extend_from_slice(assignments);
        for source in sources.drain(..) {
            match source {
                BatchSource::Own(own) => {
                    // The own share is consumed locally right away — split it
                    // into a reused scratch instead of a fresh Vec per wave.
                    let mut runs = std::mem::take(&mut self.runs_scratch);
                    runs.clear();
                    for (run_idx, cursor) in cursors[..own.num_runs()].iter_mut().enumerate() {
                        runs.push(cursor.split_front(own.runs()[run_idx]));
                    }
                    self.resolve_own(&runs, ctx);
                    self.runs_scratch = runs;
                }
                BatchSource::Child(child, epoch, batch) => {
                    // A child's share travels in a message and must be owned.
                    let mut runs = Vec::with_capacity(batch.num_runs());
                    for (run_idx, cursor) in cursors[..batch.num_runs()].iter_mut().enumerate() {
                        runs.push(cursor.split_front(batch.runs()[run_idx]));
                    }
                    ctx.send(child, SkueueMsg::Serve { epoch, runs });
                }
            }
        }
        debug_assert!(
            cursors.iter().all(|c| c.count == 0),
            "sources must account for every operation of the combined batch"
        );
        self.cursors_scratch = cursors;
    }

    fn handle_serve(
        &mut self,
        epoch: u64,
        runs: Vec<RunAssignment>,
        ctx: &mut Context<SkueueMsg<T>>,
    ) {
        let front = match self.slots.front() {
            Some(slot) => slot.epoch,
            None => {
                debug_assert!(false, "Serve received without an in-flight wave");
                return;
            }
        };
        if epoch != front {
            // Serves can overtake each other under asynchronous delivery,
            // but waves must be resolved in epoch order (the own-log prefix
            // decomposition depends on it) — park until older waves caught
            // up.
            if self.slots.iter().any(|s| s.epoch == epoch) {
                self.serve_stash.push(StashedServe { epoch, runs });
            } else {
                debug_assert!(false, "Serve for unknown wave epoch {epoch}");
            }
            return;
        }
        self.apply_serve(runs, ctx);
        // Release stashed serves that have reached the front of the ring.
        while let Some(front) = self.slots.front().map(|s| s.epoch) {
            match self.serve_stash.iter().position(|s| s.epoch == front) {
                Some(idx) => {
                    let stashed = self.serve_stash.swap_remove(idx);
                    self.apply_serve(stashed.runs, ctx);
                }
                None => break,
            }
        }
    }

    /// Resolves the oldest in-flight wave with the given assignments.
    fn apply_serve(&mut self, runs: Vec<RunAssignment>, ctx: &mut Context<SkueueMsg<T>>) {
        let mut slot = self.slots.pop_front().expect("caller checked the front");
        debug_assert_eq!(slot.num_runs, runs.len());
        self.serve_sources(&runs, &mut slot.sources, ctx);
        self.sources_pool.push(slot.sources);
    }

    /// Resolves the node's own requests from the run assignments of its own
    /// sub-batch (Stage 3 → Stage 4 transition).
    fn resolve_own(&mut self, runs: &[RunAssignment], ctx: &mut Context<SkueueMsg<T>>) {
        let mut log_cursor = 0usize;
        for run in runs {
            for j in 0..run.count {
                // The resolved prefix is drained below, so the payload can be
                // *moved* out of the log entry (a take, not a clone) — the
                // generic path keeps the allocation/copy profile of the old
                // `Copy` payloads.
                let entry = &mut self.own_log[log_cursor];
                let id = entry.id;
                let issued_round = entry.issued_round;
                debug_assert_eq!(entry.kind, run.kind, "own log out of sync with batch runs");
                let value = std::mem::take(&mut entry.value);
                log_cursor += 1;
                let order_major = run.value_base + j;
                self.note_order_assigned(id.seq, order_major);
                if !self.trace.is_off() {
                    self.trace.emit(TraceEvent::Assigned {
                        op: Self::tid(id),
                        wave: run.wave,
                        major: order_major,
                        round: ctx.round(),
                    });
                }

                match run.kind {
                    BatchOp::Enqueue => {
                        let position = run.pos_lo + j;
                        let ticket = if self.cfg.is_stack() {
                            run.ticket_base + j
                        } else {
                            0
                        };
                        self.issue_put(
                            id,
                            issued_round,
                            value,
                            position,
                            ticket,
                            order_major,
                            run.wave,
                            ctx,
                        );
                    }
                    BatchOp::Dequeue => {
                        let available = run.available_positions();
                        if j < available {
                            let position = if run.descending {
                                run.pos_hi - j
                            } else {
                                run.pos_lo + j
                            };
                            let max_ticket = if self.cfg.is_stack() {
                                run.ticket_base
                            } else {
                                u64::MAX
                            };
                            self.issue_get(
                                id,
                                issued_round,
                                position,
                                max_ticket,
                                order_major,
                                run.wave,
                                ctx,
                            );
                        } else {
                            // ⊥: completes immediately.
                            self.completed.push(OpRecord {
                                id,
                                kind: OpKind::Dequeue,
                                value: T::default(),
                                result: OpResult::Empty,
                                order: self.order_key(run.wave, order_major, id.origin),
                                issued_round,
                                completed_round: ctx.round(),
                            });
                        }
                    }
                }
            }
        }
        // Remove the resolved prefix from the log; anything after it was
        // generated after the batch was sent and belongs to the next one.
        self.own_log.drain(0..log_cursor);
        // The resolved prefix was wave-committed in its entirety (waves
        // resolve in epoch order), so the committed-prefix marker shrinks by
        // exactly the drained count.
        debug_assert!(log_cursor <= self.wave_committed);
        self.wave_committed = self.wave_committed.saturating_sub(log_cursor);
    }

    /// The witnessed order key for an anchor-assigned order value: plain
    /// `major` ordering when unsharded (bit-identical to the pre-sharding
    /// format), the `(wave, shard, major)` merge components otherwise.
    fn order_key(&self, wave: u64, major: u64, origin: ProcessId) -> OrderKey {
        if self.cfg.is_sharded() {
            OrderKey::sharded(wave, self.shard, major, origin)
        } else {
            OrderKey::anchor(major, origin)
        }
    }

    /// Updates the local order bookkeeping when one of this node's own
    /// requests receives its anchor order value, releasing any locally
    /// combined pairs anchored to it.
    fn note_order_assigned(&mut self, seq: u64, major: u64) {
        self.last_order_major = major;
        self.minor_counter = 0;
        if let Some(pairs) = self.pairs_by_anchor.remove(&seq) {
            // Buckets are maintained in seq order (see `reanchor_pairs`).
            debug_assert!(pairs.windows(2).all(|w| w[0].id.seq < w[1].id.seq));
            for mut record in pairs {
                self.minor_counter += 1;
                record.order = OrderKey::local(major, self.process(), self.minor_counter);
                self.completed.push(record);
            }
        }
    }

    // ---------------------------------------------------------------------
    // Stage 4: DHT operations (batched routing).
    // ---------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn issue_put(
        &mut self,
        id: RequestId,
        issued_round: u64,
        value: T,
        position: u64,
        ticket: u64,
        order_major: u64,
        wave: u64,
        ctx: &mut Context<SkueueMsg<T>>,
    ) {
        // The anchor assigns shard-local positions; the DHT stores under the
        // global position — the shard id in the high bits of the keyspace.
        let position = self.shard_map.global_position(self.shard, position);
        let key = self.hasher.position_key(position);
        let entry = StoredEntry {
            position,
            key,
            ticket,
            element: Element::new(id, value),
        };
        let meta = PutMeta {
            issued_round,
            order: order_major,
            wave,
            needs_ack: self.cfg.stage4_barrier,
            issuer: self.view.me.node,
        };
        if self.cfg.stage4_barrier {
            self.outstanding_dht += 1;
        }
        self.stats.dht_ops_issued += 1;
        if !self.trace.is_off() {
            self.trace.emit(TraceEvent::DhtIssued {
                op: Self::tid(id),
                round: ctx.round(),
            });
        }
        let progress = RouteProgress::new(key, self.cfg.bit_budget);
        self.dispatch_dht(Box::new(DhtOp::Put { entry, meta }), progress, ctx);
    }

    #[allow(clippy::too_many_arguments)]
    fn issue_get(
        &mut self,
        id: RequestId,
        issued_round: u64,
        position: u64,
        max_ticket: u64,
        order_major: u64,
        wave: u64,
        ctx: &mut Context<SkueueMsg<T>>,
    ) {
        let position = self.shard_map.global_position(self.shard, position);
        let key = self.hasher.position_key(position);
        // Remember the metadata needed to complete the request when the
        // reply arrives.
        self.outstanding_gets.insert(
            id,
            OutstandingGet {
                issued_round,
                order: order_major,
                wave,
            },
        );
        if self.cfg.stage4_barrier {
            self.outstanding_dht += 1;
        }
        self.stats.dht_ops_issued += 1;
        if !self.trace.is_off() {
            self.trace.emit(TraceEvent::DhtIssued {
                op: Self::tid(id),
                round: ctx.round(),
            });
        }
        let progress = RouteProgress::new(key, self.cfg.bit_budget);
        self.dispatch_dht(
            Box::new(DhtOp::Get {
                position,
                max_ticket,
                request: id,
                requester: self.view.me.node,
            }),
            progress,
            ctx,
        );
    }

    /// Routes one DHT operation a single step: applies it locally when this
    /// node is responsible, otherwise parks it in the per-destination
    /// [`RouteBuffer`] — the end-of-visit flush turns everything heading to
    /// the same next hop into one `DhtBatch` message.
    pub(crate) fn dispatch_dht(
        &mut self,
        op: Box<DhtOp<T>>,
        mut progress: RouteProgress,
        ctx: &mut Context<SkueueMsg<T>>,
    ) {
        // If a joiner took over part of our interval but is not integrated
        // into the cycle yet, forward operations for its range directly.
        if let Some(target) = self.joiner_responsible_for(progress.target) {
            progress.hops += 1;
            if self.trace.hops() {
                self.trace.emit(TraceEvent::DhtHop {
                    op: Self::tid(op.request_id()),
                    hop: progress.hops,
                    round: ctx.round(),
                });
            }
            self.route_buffer.push(target, RoutedDhtOp { op, progress });
            return;
        }
        match route_step(&self.view, &mut progress) {
            RouteAction::Deliver => self.apply_dht(*op, &progress, ctx),
            RouteAction::Forward(next) => {
                progress.hops += 1;
                if self.trace.hops() {
                    self.trace.emit(TraceEvent::DhtHop {
                        op: Self::tid(op.request_id()),
                        hop: progress.hops,
                        round: ctx.round(),
                    });
                }
                self.route_buffer.push(next, RoutedDhtOp { op, progress });
            }
        }
    }

    /// Applies or re-routes every operation of a delivered `DhtBatch`, in
    /// batch order.
    fn handle_dht_batch(&mut self, ops: Vec<RoutedDhtOp<T>>, ctx: &mut Context<SkueueMsg<T>>) {
        for routed in ops {
            self.dispatch_dht(routed.op, routed.progress, ctx);
        }
    }

    /// Applies a DHT operation at the responsible node.  Replies coalesce in
    /// [`Self::reply_buffer`]; satisfied parked GETs reuse one scratch
    /// vector via the store's bulk `put_into` entry point, so applying a
    /// whole delivered batch is one pass without per-op allocations.
    pub(crate) fn apply_dht(
        &mut self,
        op: DhtOp<T>,
        progress: &RouteProgress,
        ctx: &mut Context<SkueueMsg<T>>,
    ) {
        self.stats.dht_hops.record(progress.hops as u64);
        if !self.trace.is_off() {
            self.trace.emit(TraceEvent::DhtApplied {
                op: Self::tid(op.request_id()),
                hops: progress.hops,
                round: ctx.round(),
            });
        }
        match op {
            DhtOp::Put { entry, meta } => {
                // The enqueue/push is finished once its element is stored (or
                // immediately consumed by a parked GET).  DHT routing stays
                // inside the shard's cycle, so the storing node shares the
                // issuer's shard and can witness the sharded order key.  The
                // completion record needs the payload *and* the store keeps
                // the element, so this is the one deliberate clone on the
                // enqueue path (a copy, pre-generics).
                self.completed.push(OpRecord {
                    id: entry.element.id,
                    kind: OpKind::Enqueue,
                    value: entry.element.value.clone(),
                    result: OpResult::Enqueued,
                    order: self.order_key(meta.wave, meta.order, entry.element.id.origin),
                    issued_round: meta.issued_round,
                    completed_round: ctx.round(),
                });
                if meta.needs_ack {
                    ctx.send(
                        meta.issuer,
                        SkueueMsg::PutAck {
                            request: entry.element.id,
                        },
                    );
                }
                let mut satisfied = std::mem::take(&mut self.satisfied_scratch);
                debug_assert!(satisfied.is_empty());
                self.store.put_into(entry, &mut satisfied);
                for s in satisfied.drain(..) {
                    self.reply_buffer.push(
                        s.get.requester,
                        DhtReplyItem {
                            request: s.get.request,
                            entry: s.entry,
                        },
                    );
                }
                self.satisfied_scratch = satisfied;
            }
            DhtOp::Get {
                position,
                max_ticket,
                request,
                requester,
            } => {
                match self.store.get(position, max_ticket, request, requester) {
                    GetOutcome::Found(entry) => {
                        self.reply_buffer
                            .push(requester, DhtReplyItem { request, entry });
                    }
                    GetOutcome::Parked => {
                        // Waits at this node until the PUT arrives (Stage 4).
                    }
                }
            }
        }
    }

    fn handle_dht_reply_batch(
        &mut self,
        replies: Vec<DhtReplyItem<T>>,
        ctx: &mut Context<SkueueMsg<T>>,
    ) {
        for item in replies {
            self.handle_dht_reply(item.request, item.entry, ctx);
        }
    }

    fn handle_dht_reply(
        &mut self,
        request: RequestId,
        entry: StoredEntry<T>,
        ctx: &mut Context<SkueueMsg<T>>,
    ) {
        if let Some(meta) = self.outstanding_gets.remove(&request) {
            if self.cfg.stage4_barrier {
                self.outstanding_dht = self.outstanding_dht.saturating_sub(1);
            }
            // The entry ends its life here: the payload moves into the
            // completion record without a clone.
            let source = entry.element.id;
            self.completed.push(OpRecord {
                id: request,
                kind: OpKind::Dequeue,
                value: entry.element.value,
                result: OpResult::Returned(source),
                order: self.order_key(meta.wave, meta.order, request.origin),
                issued_round: meta.issued_round,
                completed_round: ctx.round(),
            });
        } else {
            // A reply can legitimately race its requester's departure during
            // join/leave (a draining node forwards the reply to an absorber
            // that never issued the GET) — count it for the metrics instead
            // of tripping a debug-build panic.
            self.stats.unmatched_dht_replies += 1;
        }
    }

    /// Emits the per-destination DHT batches accumulated during this visit:
    /// one `DhtBatch` per next hop, one `DhtReplyBatch` per requester.
    /// Called at the end of every `on_timeout`, which runs at the end of
    /// every visit of a sim-active node — so buffered ops never survive a
    /// visit and add no latency.
    fn flush_dht_buffers(&mut self, ctx: &mut Context<SkueueMsg<T>>) {
        if !self.route_buffer.is_empty() {
            let mut buf = std::mem::take(&mut self.route_buffer);
            buf.flush(|to, ops| {
                self.stats.dht_batches_sent += 1;
                self.stats.dht_ops_per_message.record(ops.len() as u64);
                ctx.send(to, SkueueMsg::DhtBatch { ops });
            });
            self.route_buffer = buf;
        }
        if !self.reply_buffer.is_empty() {
            let mut buf = std::mem::take(&mut self.reply_buffer);
            buf.flush(|to, replies| {
                ctx.send(to, SkueueMsg::DhtReplyBatch { replies });
            });
            self.reply_buffer = buf;
        }
    }

    // ---------------------------------------------------------------------
    // Anchor / update-phase helpers (details in join_leave.rs).
    // ---------------------------------------------------------------------

    /// Becomes the anchor with the given state (initial setup or hand-off).
    pub(crate) fn adopt_anchor(&mut self, state: AnchorState) {
        self.anchor = Some(state);
    }
}

impl<T: Payload> Actor for SkueueNode<T> {
    type Msg = SkueueMsg<T>;

    fn on_message(&mut self, from: NodeId, msg: SkueueMsg<T>, ctx: &mut Context<SkueueMsg<T>>) {
        // Draining nodes forward everything to their absorber (reliable
        // channels: nothing is lost while the node is on its way out) —
        // except *node-local* messages, which would corrupt the absorber's
        // own state if relayed: pointer updates, update-phase control, a
        // sibling's integration status (the absorber belongs to a different
        // process; applying the leaver's sibling flags to it would cut an
        // innocent node out of the absorber's aggregation tree), and a late
        // aggregate confirmation (it would clear the absorber's own
        // channel-serialisation credit).
        if let Role::Draining { absorber } = self.role {
            match msg {
                SkueueMsg::SetPred { .. }
                | SkueueMsg::SetSucc { .. }
                | SkueueMsg::UpdateOver { .. }
                | SkueueMsg::UpdateFlag { .. }
                | SkueueMsg::SiblingStatus { .. }
                | SkueueMsg::AggregateAck => {}
                other => {
                    debug_assert!(
                        !other.is_node_local(),
                        "draining node must not forward node-local message {other:?}"
                    );
                    ctx.send(absorber, other);
                    return;
                }
            }
        }

        match msg {
            SkueueMsg::Aggregate {
                child,
                epoch,
                batch,
            } => {
                // Confirm receipt right away (the credit that serialises the
                // child→parent channel under reordering delivery) and queue
                // the sub-batch.  Combining happens in this visit's timeout
                // — after *all* of the round's messages — so sub-batches
                // arriving in the same round still share one wave, and
                // latency stays at one round per tree level, matching the
                // paper's accounting.
                if !self.cfg.fifo_channels {
                    ctx.send(child, SkueueMsg::AggregateAck);
                }
                self.child_batches.push(child, epoch, batch);
            }
            SkueueMsg::AggregateAck => {
                // Credit non-negativity: each ack must match exactly one
                // outstanding aggregate (the model's credit-serialisation
                // invariant); a spurious ack would double-credit the channel
                // and let two unconfirmed aggregates race on it.
                debug_assert!(
                    self.aggregate_unacked,
                    "AggregateAck without an outstanding aggregate credit at {}",
                    self.view.me.vid
                );
                self.aggregate_unacked = false;
                // The next wave (if any is ready) opens in this visit's
                // timeout.
            }
            SkueueMsg::Serve { epoch, runs } => {
                self.handle_serve(epoch, runs, ctx);
            }
            SkueueMsg::DhtBatch { ops } => {
                if matches!(self.role, Role::Joining { .. }) {
                    // Not part of the cycle yet: re-route after integration.
                    self.deferred_dht.extend(ops);
                } else {
                    self.handle_dht_batch(ops, ctx);
                }
            }
            SkueueMsg::DhtReplyBatch { replies } => self.handle_dht_reply_batch(replies, ctx),
            SkueueMsg::PutAck { .. } => {
                if self.cfg.stage4_barrier {
                    self.outstanding_dht = self.outstanding_dht.saturating_sub(1);
                }
            }
            other => self.handle_membership(from, other, ctx),
        }
    }

    fn on_timeout(&mut self, ctx: &mut Context<SkueueMsg<T>>) {
        match self.role {
            Role::Active => {
                self.membership_timeout(ctx);
                self.try_send_batch(ctx);
            }
            Role::Joining { .. } => self.joining_timeout(ctx),
            Role::Draining { .. } => {}
        }
        // Everything routed during this visit (messages + timeout) leaves as
        // one batch per destination.
        self.flush_dht_buffers(ctx);
    }

    fn is_active(&self) -> bool {
        !matches!(self.role, Role::Draining { .. })
    }

    /// A node's `TIMEOUT` is a provable no-op — and is therefore skipped by
    /// the scheduler — while it has nothing a wave would carry, its wave
    /// pipeline is full, or its latest aggregate is unconfirmed, and no
    /// membership duty is outstanding.  Every state change that can flip
    /// this back (a `Serve`, an `AggregateAck`, an incoming `Aggregate`, an
    /// absorb request, an `UpdateOver`, …) arrives as a message, after
    /// which the scheduler re-queries; the driver-side mutations that can
    /// flip it (`generate_op` — new own work — and `request_leave`) are
    /// followed by a
    /// [`refresh_timeout_interest`](skueue_sim::Simulation::refresh_timeout_interest)
    /// call in the cluster driver.
    fn wants_timeout(&self) -> bool {
        match self.role {
            Role::Active => {
                let pipeline_open = self.slots.len() < self.cfg.effective_pipeline_depth()
                    && !self.aggregate_unacked;
                (pipeline_open && (self.strict_waves() || self.has_wave_work()))
                    || self.absorb_deferred.is_some()
                    || (self.wants_to_leave && !self.leave_requested && !self.leave_granted)
            }
            Role::Joining { .. } => !self.join_sent,
            Role::Draining { .. } => false,
        }
    }
}
