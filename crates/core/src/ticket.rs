//! Typed operation tickets and outcomes.
//!
//! Every request-issuing call on [`crate::SkueueCluster`] (and on
//! [`crate::ClientHandle`]) returns an [`OpTicket`] — a first-class handle to
//! the in-flight operation.  Once the operation completes, the cluster
//! resolves the ticket to a structured [`OpOutcome`]; callers never have to
//! scan the raw execution [`History`](skueue_verify::History) to learn what a
//! dequeue returned:
//!
//! ```
//! use skueue_core::{OpOutcome, SkueueCluster};
//! use skueue_sim::ids::ProcessId;
//!
//! let mut cluster = SkueueCluster::builder().processes(4).seed(7).build()?;
//! let put = cluster.client(ProcessId(0)).enqueue(99)?;
//! let got = cluster.client(ProcessId(2)).dequeue()?;
//! let outcomes = cluster.run_until_done(&[put, got], 500)?;
//! assert!(matches!(outcomes[0], OpOutcome::Enqueued { .. }));
//! assert_eq!(outcomes[1].value(), Some(99));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use skueue_dht::{Element, Payload};
use skueue_sim::ids::{ProcessId, RequestId};
use skueue_verify::{OpKind, OpRecord, OpResult};

/// Handle to one issued operation.
///
/// Tickets are small `Copy` values; hold on to them and resolve them later
/// with [`crate::SkueueCluster::outcome`], [`crate::SkueueCluster::status`]
/// or [`crate::SkueueCluster::run_until_done`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpTicket {
    /// Identity of the issuing cluster instance — `RequestId`s are
    /// deterministic across clusters, so this is what keeps a ticket from
    /// one cluster from resolving against another.
    cluster: u64,
    id: RequestId,
    kind: OpKind,
    issued_round: u64,
}

impl OpTicket {
    /// Creates a ticket (crate-internal; tickets are handed out by the
    /// cluster when an operation is issued).
    pub(crate) fn new(cluster: u64, id: RequestId, kind: OpKind, issued_round: u64) -> Self {
        OpTicket {
            cluster,
            id,
            kind,
            issued_round,
        }
    }

    /// The issuing cluster's instance id (crate-internal).
    pub(crate) fn cluster_id(&self) -> u64 {
        self.cluster
    }

    /// The underlying protocol request id (`OP_{v,i}`).
    pub fn request_id(&self) -> RequestId {
        self.id
    }

    /// The process at which the operation was issued.
    pub fn origin(&self) -> ProcessId {
        self.id.origin
    }

    /// Whether this ticket belongs to an insert (enqueue/push) or a remove
    /// (dequeue/pop).
    pub fn kind(&self) -> OpKind {
        self.kind
    }

    /// The simulation round in which the operation was issued.
    pub fn issued_round(&self) -> u64 {
        self.issued_round
    }
}

impl std::fmt::Display for OpTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ticket[{:?} {}]", self.kind, self.id)
    }
}

/// Structured result of a completed operation, generic over the element
/// payload type of the issuing cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpOutcome<T = u64> {
    /// An `ENQUEUE()`/`PUSH()` completed in round `round`, `rounds` rounds
    /// after it was issued.
    Enqueued {
        /// Round in which the insert completed.
        round: u64,
        /// Latency in rounds from issue to completion.
        rounds: u64,
    },
    /// A `DEQUEUE()`/`POP()` completed; `element` is the returned element, or
    /// `None` when the structure was empty (`⊥`).
    Dequeued {
        /// The element the remove returned (`None` = `⊥`).
        element: Option<Element<T>>,
        /// Latency in rounds from issue to completion.
        rounds: u64,
    },
}

impl<T: Payload> OpOutcome<T> {
    /// Builds the outcome described by a completion record.
    pub(crate) fn from_record(record: &OpRecord<T>) -> Self {
        match record.kind {
            OpKind::Enqueue => OpOutcome::Enqueued {
                round: record.completed_round,
                rounds: record.latency(),
            },
            OpKind::Dequeue => OpOutcome::Dequeued {
                element: match record.result {
                    OpResult::Returned(source) => Some(Element::new(source, record.value.clone())),
                    _ => None,
                },
                rounds: record.latency(),
            },
        }
    }

    /// The returned element of a dequeue/pop (`None` for inserts and for
    /// removes that hit an empty structure).
    pub fn element(&self) -> Option<Element<T>> {
        match self {
            OpOutcome::Dequeued { element, .. } => element.clone(),
            OpOutcome::Enqueued { .. } => None,
        }
    }

    /// A borrow of the returned element's payload, if any (the
    /// allocation-free accessor for non-`Copy` payloads).
    pub fn payload(&self) -> Option<&T> {
        match self {
            OpOutcome::Dequeued {
                element: Some(e), ..
            } => Some(&e.value),
            _ => None,
        }
    }

    /// The payload value a dequeue/pop returned, if any (cloned; use
    /// [`Self::payload`] to borrow instead).
    pub fn value(&self) -> Option<T> {
        self.payload().cloned()
    }

    /// True for a dequeue/pop that found the structure empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, OpOutcome::Dequeued { element: None, .. })
    }

    /// Latency of the operation in rounds.
    pub fn rounds(&self) -> u64 {
        match self {
            OpOutcome::Enqueued { rounds, .. } | OpOutcome::Dequeued { rounds, .. } => *rounds,
        }
    }
}

/// Completion state of a ticket, as reported by
/// [`crate::SkueueCluster::status`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpStatus<T = u64> {
    /// The operation is still in flight.
    Pending,
    /// The operation completed with the given outcome.
    Done(OpOutcome<T>),
    /// The ticket was issued by a *different* cluster and can never resolve
    /// on this one — polling further is pointless.
    Foreign,
}

impl<T: Payload> OpStatus<T> {
    /// True once the operation has completed.
    pub fn is_done(&self) -> bool {
        matches!(self, OpStatus::Done(_))
    }

    /// True for a ticket another cluster issued; it will never be `Done`
    /// here.
    pub fn is_foreign(&self) -> bool {
        matches!(self, OpStatus::Foreign)
    }

    /// The outcome, if the operation has completed.
    pub fn outcome(&self) -> Option<OpOutcome<T>> {
        match self {
            OpStatus::Done(outcome) => Some(outcome.clone()),
            OpStatus::Pending | OpStatus::Foreign => None,
        }
    }
}

/// One event of the cluster's completion stream.
///
/// Workloads, benches and the verifier all consume the same stream: register
/// a callback with [`crate::SkueueCluster::on_complete`] and it fires once
/// per completed operation, in completion order.  `record` is the exact
/// [`OpRecord`] appended to the execution history for this operation, so an
/// observer can rebuild the full [`skueue_verify::History`] from the events
/// alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletionEvent<T = u64> {
    /// Ticket of the completed operation.
    pub ticket: OpTicket,
    /// Structured outcome of the operation.
    pub outcome: OpOutcome<T>,
    /// The history record witnessing the operation's place in `≺`.
    pub record: OpRecord<T>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use skueue_verify::OrderKey;

    fn record(kind: OpKind, result: OpResult, value: u64) -> OpRecord<u64> {
        OpRecord {
            id: RequestId::new(ProcessId(3), 0),
            kind,
            value,
            result,
            order: OrderKey::anchor(1, ProcessId(3)),
            issued_round: 2,
            completed_round: 9,
        }
    }

    #[test]
    fn ticket_accessors() {
        let t = OpTicket::new(3, RequestId::new(ProcessId(5), 7), OpKind::Enqueue, 11);
        assert_eq!(t.cluster_id(), 3);
        assert_eq!(t.origin(), ProcessId(5));
        assert_eq!(t.request_id().seq, 7);
        assert_eq!(t.kind(), OpKind::Enqueue);
        assert_eq!(t.issued_round(), 11);
        assert!(t.to_string().contains("p5#7"));
    }

    #[test]
    fn enqueue_outcome() {
        let o = OpOutcome::from_record(&record(OpKind::Enqueue, OpResult::Enqueued, 42));
        assert_eq!(
            o,
            OpOutcome::Enqueued {
                round: 9,
                rounds: 7
            }
        );
        assert_eq!(o.element(), None);
        assert_eq!(o.value(), None);
        assert!(!o.is_empty());
        assert_eq!(o.rounds(), 7);
    }

    #[test]
    fn dequeue_outcome_with_element() {
        let source = RequestId::new(ProcessId(0), 4);
        let o = OpOutcome::from_record(&record(OpKind::Dequeue, OpResult::Returned(source), 42));
        assert_eq!(o.element(), Some(Element::new(source, 42)));
        assert_eq!(o.value(), Some(42));
        assert!(!o.is_empty());
    }

    #[test]
    fn empty_dequeue_outcome() {
        let o = OpOutcome::from_record(&record(OpKind::Dequeue, OpResult::Empty, 0));
        assert!(o.is_empty());
        assert_eq!(o.value(), None);
        assert_eq!(o.rounds(), 7);
    }

    #[test]
    fn status_helpers() {
        assert!(!OpStatus::<u64>::Pending.is_done());
        assert_eq!(OpStatus::<u64>::Pending.outcome(), None);
        let done = OpStatus::<u64>::Done(OpOutcome::Enqueued {
            round: 1,
            rounds: 1,
        });
        assert!(done.is_done());
        assert!(done.outcome().is_some());
    }
}
