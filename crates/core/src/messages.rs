//! Protocol messages ("remote action calls").
//!
//! Every message a Skueue node sends corresponds to one of the actions of
//! the paper: `AGGREGATE` (Stage 1), `SERVE` (Stage 3), the DHT's `PUT`/`GET`
//! (Stage 4) plus the reply a `GET` triggers, and the join/leave/update-phase
//! actions of Section IV.

use crate::anchor::{AnchorState, RunAssignment};
use crate::batch::Batch;
use serde::{Deserialize, Serialize};
use skueue_dht::{Payload, PendingGet, StoredEntry};
use skueue_overlay::{NeighborInfo, RouteProgress};
use skueue_sim::ids::{NodeId, RequestId};

/// Metadata a `PUT` carries so the storing node can complete the enqueue
/// request (the paper does not acknowledge PUTs; completion is recorded at
/// the responsible node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PutMeta {
    /// Round in which the enqueue was issued (latency accounting).
    pub issued_round: u64,
    /// The enqueue's order value `value(op)`.
    pub order: u64,
    /// Wave epoch of the anchor wave that assigned the order value (the
    /// leading component of the sharded order merge; zero when unsharded).
    pub wave: u64,
    /// Whether the issuer needs an acknowledgement (stack stage-4 barrier).
    pub needs_ack: bool,
    /// Node to acknowledge to.
    pub issuer: NodeId,
}

/// A DHT operation being routed to the node responsible for its key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DhtOp<T = u64> {
    /// `PUT(e, k)`: store `entry` at the responsible node.
    Put {
        /// The entry (element, position, key, ticket).
        entry: StoredEntry<T>,
        /// Completion/ack metadata.
        meta: PutMeta,
    },
    /// `GET(k, v)`: remove the element at `position` and deliver it to
    /// `requester`.
    Get {
        /// Queue/stack position to fetch.
        position: u64,
        /// Maximum admissible ticket (stack); `u64::MAX` for the queue.
        max_ticket: u64,
        /// The dequeue/pop request this GET serves.
        request: RequestId,
        /// Node that issued the GET and expects the reply.
        requester: NodeId,
    },
}

impl<T: Payload> DhtOp<T> {
    /// The position this operation refers to.
    pub fn position(&self) -> u64 {
        match self {
            DhtOp::Put { entry, .. } => entry.position,
            DhtOp::Get { position, .. } => *position,
        }
    }

    /// The queue/stack request this DHT operation belongs to (the identity
    /// the op's lifecycle-trace events are tagged with).
    pub fn request_id(&self) -> RequestId {
        match self {
            DhtOp::Put { entry, .. } => entry.element.id,
            DhtOp::Get { request, .. } => *request,
        }
    }
}

/// One DHT operation in flight, together with its routing state.  This is
/// the unit the per-destination coalescing layer ([`skueue_overlay::RouteBuffer`])
/// batches: all routed ops that share the next distance-halving hop travel
/// in one [`SkueueMsg::DhtBatch`] per neighbour per round.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutedDhtOp<T = u64> {
    /// The operation (boxed so moving an op between buffers moves a pointer).
    pub op: Box<DhtOp<T>>,
    /// Routing state (target key, remaining distance-halving bits, hops).
    pub progress: RouteProgress,
}

/// One answered `GET` inside a [`SkueueMsg::DhtReplyBatch`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DhtReplyItem<T = u64> {
    /// The dequeue/pop request the reply answers.
    pub request: RequestId,
    /// The stored entry that was removed for it.
    pub entry: StoredEntry<T>,
}

/// Payload of the join data handover: everything the responsible node gives a
/// joining virtual node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinHandover<T = u64> {
    /// The joiner's (temporary) predecessor: the responsible node itself.
    pub pred: NeighborInfo,
    /// The joiner's (future) successor.
    pub succ: NeighborInfo,
    /// DHT entries now owned by the joiner.
    pub entries: Vec<StoredEntry<T>>,
    /// Parked GETs now owned by the joiner.
    pub pending: Vec<(u64, PendingGet)>,
}

/// Payload of the leave absorption: everything a leaving node hands to its
/// absorber (its cycle predecessor).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AbsorbPayload<T = u64> {
    /// The leaver's predecessor *as the leaver sees it* at hand-over time.
    /// Normally the absorber itself — but when the absorber spliced joiners
    /// into the cycle during the same update phase, the last spliced joiner
    /// is the leaver's true predecessor and must inherit its right edge.
    pub pred: NeighborInfo,
    /// The leaver's successor (the new successor of whoever precedes the
    /// leaver in the cycle).
    pub succ: NeighborInfo,
    /// The leaver's stored DHT entries.
    pub entries: Vec<StoredEntry<T>>,
    /// The leaver's parked GETs.
    pub pending: Vec<(u64, PendingGet)>,
    /// Sub-batches the leaver had received from aggregation-tree children but
    /// not yet forwarded: `(child, child's wave epoch, batch)` in per-child
    /// FIFO order, so the absorber can serve them under the epochs the
    /// children are waiting on.
    pub child_batches: Vec<(NodeId, u64, Batch)>,
    /// Joining nodes the leaver was responsible for but had not integrated
    /// yet; the absorber takes over the responsibility (and re-counts them
    /// toward the next update phase) so no joiner is stranded by its
    /// responsible node leaving.
    pub joiners: Vec<NeighborInfo>,
    /// Anchor state, if the leaver was the anchor.
    pub anchor: Option<AnchorState>,
}

/// All messages exchanged by Skueue nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SkueueMsg<T = u64> {
    // ---- Stages 1-4 -------------------------------------------------------
    /// Stage 1: a child forwards its combined batch to its aggregation-tree
    /// parent (`AGGREGATE`).  The wave `epoch` is the child's local wave
    /// counter; the parent echoes it back in the matching [`Self::Serve`] so
    /// the child can pair assignments with the right in-flight wave while
    /// several waves are pipelined.  `child` identifies the sender at the
    /// protocol level (the transport-level sender may be a draining node
    /// forwarding on the child's behalf).
    Aggregate {
        /// The aggregation-tree child this batch belongs to.
        child: NodeId,
        /// The child's wave epoch for this batch.
        epoch: u64,
        /// The child's combined batch.
        batch: Batch,
    },
    /// Receipt confirmation for an [`Self::Aggregate`]: the parent has
    /// enqueued the sub-batch.  A child keeps at most one unconfirmed
    /// aggregate in flight, which serialises the child→parent channel and
    /// guarantees the parent commits a child's waves in epoch order even
    /// under reordering (asynchronous) delivery.
    AggregateAck,
    /// Stage 3: the parent returns the run assignments for the sub-batch this
    /// node contributed (`SERVE`).
    Serve {
        /// The receiver's wave epoch these assignments answer.
        epoch: u64,
        /// One assignment per run of that wave's combined batch.
        runs: Vec<RunAssignment>,
    },
    /// Stage 4: a batch of DHT operations being routed over the LDB, one
    /// message per (sender, next hop) per round.  Ops that diverge at a
    /// later hop are re-batched by every forwarding node, so the per-round
    /// message count is bounded by the cut of the routing DAG instead of the
    /// number of in-flight ops (the congestion argument of Theorem 15).
    DhtBatch {
        /// The batched operations, in issue order.
        ops: Vec<RoutedDhtOp<T>>,
    },
    /// Replies to `GET`s, coalesced per requester: every element a node
    /// hands back to the same requester within one visit travels in a
    /// single message.
    DhtReplyBatch {
        /// The answered GETs, in application order.
        replies: Vec<DhtReplyItem<T>>,
    },
    /// Acknowledgement of a `PUT` (only requested by stack nodes enforcing
    /// the stage-4 barrier).
    PutAck {
        /// The enqueue/push request whose PUT was applied.
        request: RequestId,
    },

    // ---- Join (Section IV-A) ---------------------------------------------
    /// A joining virtual node announces itself; routed to the node
    /// responsible for its label.
    JoinRequest {
        /// The joining virtual node.
        joiner: NeighborInfo,
        /// Routing state towards the joiner's label.
        progress: RouteProgress,
    },
    /// Update phase: the responsible node splices the joiner into the cycle,
    /// handing over its final neighbours and the DHT data of its interval.
    Integrate {
        /// Final neighbours plus handed-over DHT data.
        handover: Box<JoinHandover<T>>,
    },
    /// The joiner confirms it is fully integrated.
    IntegrateAck,

    // ---- Leave (Section IV-B) ---------------------------------------------
    /// A node asks its left neighbour for permission to leave.
    LeaveRequest {
        /// The would-be leaver.
        leaver: NeighborInfo,
    },
    /// Permission granted: the predecessor will absorb the leaver during the
    /// next update phase.
    LeaveGranted,
    /// Permission deferred: the predecessor wants to leave first.
    LeaveDeferred,
    /// Update phase: the absorber asks the leaver for its state.
    AbsorbRequest,
    /// The leaver's state (the leaver switches to draining afterwards).
    AbsorbData(Box<AbsorbPayload<T>>),

    /// A virtual node informs its two sibling nodes (same process) that it
    /// has become an integrated member — or stopped being one.  Siblings only
    /// wait for aggregation-tree sub-batches from integrated siblings.
    SiblingStatus {
        /// Which sibling this is about.
        kind: skueue_overlay::VKind,
        /// True when the sibling is an integrated member.
        active: bool,
    },

    // ---- Neighbour pointer maintenance -------------------------------------
    /// Instructs the receiver to update its predecessor pointer.
    SetPred {
        /// The new predecessor.
        new_pred: NeighborInfo,
    },
    /// Instructs the receiver to update its successor pointer.
    SetSucc {
        /// The new successor.
        new_succ: NeighborInfo,
    },

    // ---- Update phase control ----------------------------------------------
    /// The anchor has started an update phase; propagated down the tree from
    /// each participating node to its *current* children.  A dedicated
    /// control message (rather than a flag on [`Self::Serve`]) because with
    /// pipelined waves the contributors of an in-flight wave can differ from
    /// a node's current children — and the set a node awaits `UpdateAck`s
    /// from must be exactly the set it flagged.
    UpdateFlag {
        /// The anchor's update-phase number (monotone; survives
        /// re-anchoring inside `AnchorState`).  All update-phase control is
        /// tagged with it so delayed messages of an *older* phase can never
        /// corrupt a younger one under reordering delivery.
        phase: u64,
    },
    /// Acknowledgement that the whole old subtree below the sender has
    /// finished its duties for the given update phase (aggregated up the
    /// old tree).
    UpdateAck {
        /// The phase being acknowledged.
        phase: u64,
    },
    /// The update phase is over; broadcast down the new aggregation tree
    /// (and relayed through absorbed leavers to their old subtrees).
    UpdateOver {
        /// The phase that ended.  A node still participating in a *younger*
        /// phase ignores it.
        phase: u64,
    },
    /// Anchor state hand-off, walking towards the leftmost node.
    AnchorTransfer {
        /// The anchor state being transferred.
        state: AnchorState,
    },
}

impl<T: Payload> SkueueMsg<T> {
    /// True for messages that configure the *receiving node itself* —
    /// neighbour pointers, update-phase control, a sibling's integration
    /// status, the channel-serialisation credit.  A draining node must
    /// consume (drop) these rather than forward them: relayed to the
    /// absorber they would corrupt *its* state (e.g. clear its aggregate
    /// credit or cut an innocent node out of its aggregation tree).  The
    /// drain arm of [`crate::node::SkueueNode`]'s `on_message` asserts
    /// against this predicate so the two lists cannot drift apart.
    pub(crate) fn is_node_local(&self) -> bool {
        matches!(
            self,
            SkueueMsg::SetPred { .. }
                | SkueueMsg::SetSucc { .. }
                | SkueueMsg::UpdateFlag { .. }
                | SkueueMsg::UpdateOver { .. }
                | SkueueMsg::SiblingStatus { .. }
                | SkueueMsg::AggregateAck
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skueue_dht::Element;
    use skueue_overlay::Label;
    use skueue_sim::ids::ProcessId;

    #[test]
    fn dht_op_position_accessor() {
        let entry = StoredEntry::queue(
            7,
            Label::from_f64(0.5),
            Element::new(RequestId::new(ProcessId(1), 0), 9u64),
        );
        let put = DhtOp::Put {
            entry,
            meta: PutMeta {
                issued_round: 1,
                order: 2,
                wave: 1,
                needs_ack: false,
                issuer: NodeId(0),
            },
        };
        assert_eq!(put.position(), 7);
        let get = DhtOp::<u64>::Get {
            position: 11,
            max_ticket: u64::MAX,
            request: RequestId::new(ProcessId(2), 3),
            requester: NodeId(4),
        };
        assert_eq!(get.position(), 11);
    }

    #[test]
    fn messages_are_cloneable_and_comparable() {
        let a = SkueueMsg::<u64>::Aggregate {
            child: NodeId(3),
            epoch: 7,
            batch: Batch::empty(),
        };
        assert_eq!(a.clone(), a);
        let b = SkueueMsg::UpdateOver { phase: 1 };
        assert_ne!(a, b);
    }

    #[test]
    fn dht_batch_messages_carry_ops_and_replies() {
        let entry = StoredEntry::queue(
            2,
            Label::from_f64(0.25),
            Element::new(RequestId::new(ProcessId(1), 4), 17u64),
        );
        let batch = SkueueMsg::DhtBatch {
            ops: vec![RoutedDhtOp {
                op: Box::new(DhtOp::Get {
                    position: 2,
                    max_ticket: u64::MAX,
                    request: RequestId::new(ProcessId(1), 4),
                    requester: NodeId(9),
                }),
                progress: RouteProgress::linear_only(Label::from_f64(0.25)),
            }],
        };
        assert_eq!(batch.clone(), batch);
        let replies = SkueueMsg::DhtReplyBatch {
            replies: vec![DhtReplyItem {
                request: RequestId::new(ProcessId(1), 4),
                entry,
            }],
        };
        assert_eq!(replies.clone(), replies);
        assert_ne!(batch, replies);
    }
}
