//! Protocol messages ("remote action calls").
//!
//! Every message a Skueue node sends corresponds to one of the actions of
//! the paper: `AGGREGATE` (Stage 1), `SERVE` (Stage 3), the DHT's `PUT`/`GET`
//! (Stage 4) plus the reply a `GET` triggers, and the join/leave/update-phase
//! actions of Section IV.

use crate::anchor::{AnchorState, RunAssignment};
use crate::batch::Batch;
use serde::{Deserialize, Serialize};
use skueue_dht::{PendingGet, StoredEntry};
use skueue_overlay::{NeighborInfo, RouteProgress};
use skueue_sim::ids::{NodeId, RequestId};

/// Metadata a `PUT` carries so the storing node can complete the enqueue
/// request (the paper does not acknowledge PUTs; completion is recorded at
/// the responsible node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PutMeta {
    /// Round in which the enqueue was issued (latency accounting).
    pub issued_round: u64,
    /// The enqueue's order value `value(op)`.
    pub order: u64,
    /// Whether the issuer needs an acknowledgement (stack stage-4 barrier).
    pub needs_ack: bool,
    /// Node to acknowledge to.
    pub issuer: NodeId,
}

/// A DHT operation being routed to the node responsible for its key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DhtOp {
    /// `PUT(e, k)`: store `entry` at the responsible node.
    Put {
        /// The entry (element, position, key, ticket).
        entry: StoredEntry,
        /// Completion/ack metadata.
        meta: PutMeta,
    },
    /// `GET(k, v)`: remove the element at `position` and deliver it to
    /// `requester`.
    Get {
        /// Queue/stack position to fetch.
        position: u64,
        /// Maximum admissible ticket (stack); `u64::MAX` for the queue.
        max_ticket: u64,
        /// The dequeue/pop request this GET serves.
        request: RequestId,
        /// Node that issued the GET and expects the reply.
        requester: NodeId,
    },
}

impl DhtOp {
    /// The position this operation refers to.
    pub fn position(&self) -> u64 {
        match self {
            DhtOp::Put { entry, .. } => entry.position,
            DhtOp::Get { position, .. } => *position,
        }
    }
}

/// Payload of the join data handover: everything the responsible node gives a
/// joining virtual node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinHandover {
    /// The joiner's (temporary) predecessor: the responsible node itself.
    pub pred: NeighborInfo,
    /// The joiner's (future) successor.
    pub succ: NeighborInfo,
    /// DHT entries now owned by the joiner.
    pub entries: Vec<StoredEntry>,
    /// Parked GETs now owned by the joiner.
    pub pending: Vec<(u64, PendingGet)>,
}

/// Payload of the leave absorption: everything a leaving node hands to its
/// absorber (its cycle predecessor).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AbsorbPayload {
    /// The leaver's successor (the absorber's new successor).
    pub succ: NeighborInfo,
    /// The leaver's stored DHT entries.
    pub entries: Vec<StoredEntry>,
    /// The leaver's parked GETs.
    pub pending: Vec<(u64, PendingGet)>,
    /// Sub-batches the leaver had received from aggregation-tree children but
    /// not yet forwarded.
    pub child_batches: Vec<(NodeId, Batch)>,
    /// Anchor state, if the leaver was the anchor.
    pub anchor: Option<AnchorState>,
}

/// All messages exchanged by Skueue nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SkueueMsg {
    // ---- Stages 1-4 -------------------------------------------------------
    /// Stage 1: a child forwards its combined batch to its aggregation-tree
    /// parent (`AGGREGATE`).
    Aggregate {
        /// The child's combined batch.
        batch: Batch,
    },
    /// Stage 3: the parent returns the run assignments for the sub-batch this
    /// node contributed (`SERVE`), possibly carrying the update-phase flag.
    Serve {
        /// One assignment per run of the receiver's pending batch.
        runs: Vec<RunAssignment>,
        /// True when the anchor decided to enter the update phase with this
        /// wave (Section IV).
        enter_update: bool,
    },
    /// Stage 4: a DHT operation being routed over the LDB.  The operation is
    /// boxed so that forwarding a hop moves a pointer, and so the large
    /// `PUT` payload does not inflate every other message variant (the
    /// aggregation wave dominates traffic).
    Dht {
        /// The operation.
        op: Box<DhtOp>,
        /// Routing state (target key, remaining distance-halving bits, hops).
        progress: RouteProgress,
    },
    /// Reply to a `GET`: the element is returned to the requester.
    DhtReply {
        /// The dequeue/pop request the reply answers.
        request: RequestId,
        /// The stored entry that was removed for it.
        entry: StoredEntry,
    },
    /// Acknowledgement of a `PUT` (only requested by stack nodes enforcing
    /// the stage-4 barrier).
    PutAck {
        /// The enqueue/push request whose PUT was applied.
        request: RequestId,
    },

    // ---- Join (Section IV-A) ---------------------------------------------
    /// A joining virtual node announces itself; routed to the node
    /// responsible for its label.
    JoinRequest {
        /// The joining virtual node.
        joiner: NeighborInfo,
        /// Routing state towards the joiner's label.
        progress: RouteProgress,
    },
    /// Update phase: the responsible node splices the joiner into the cycle,
    /// handing over its final neighbours and the DHT data of its interval.
    Integrate {
        /// Final neighbours plus handed-over DHT data.
        handover: Box<JoinHandover>,
    },
    /// The joiner confirms it is fully integrated.
    IntegrateAck,

    // ---- Leave (Section IV-B) ---------------------------------------------
    /// A node asks its left neighbour for permission to leave.
    LeaveRequest {
        /// The would-be leaver.
        leaver: NeighborInfo,
    },
    /// Permission granted: the predecessor will absorb the leaver during the
    /// next update phase.
    LeaveGranted,
    /// Permission deferred: the predecessor wants to leave first.
    LeaveDeferred,
    /// Update phase: the absorber asks the leaver for its state.
    AbsorbRequest,
    /// The leaver's state (the leaver switches to draining afterwards).
    AbsorbData(Box<AbsorbPayload>),

    /// A virtual node informs its two sibling nodes (same process) that it
    /// has become an integrated member — or stopped being one.  Siblings only
    /// wait for aggregation-tree sub-batches from integrated siblings.
    SiblingStatus {
        /// Which sibling this is about.
        kind: skueue_overlay::VKind,
        /// True when the sibling is an integrated member.
        active: bool,
    },

    // ---- Neighbour pointer maintenance -------------------------------------
    /// Instructs the receiver to update its predecessor pointer.
    SetPred {
        /// The new predecessor.
        new_pred: NeighborInfo,
    },
    /// Instructs the receiver to update its successor pointer.
    SetSucc {
        /// The new successor.
        new_succ: NeighborInfo,
    },

    // ---- Update phase control ----------------------------------------------
    /// Acknowledgement that the whole old subtree below the sender has
    /// finished its update-phase duties (aggregated up the old tree).
    UpdateAck,
    /// The update phase is over; broadcast down the new aggregation tree.
    UpdateOver,
    /// Anchor state hand-off, walking towards the leftmost node.
    AnchorTransfer {
        /// The anchor state being transferred.
        state: AnchorState,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use skueue_dht::Element;
    use skueue_overlay::Label;
    use skueue_sim::ids::ProcessId;

    #[test]
    fn dht_op_position_accessor() {
        let entry = StoredEntry::queue(
            7,
            Label::from_f64(0.5),
            Element::new(RequestId::new(ProcessId(1), 0), 9),
        );
        let put = DhtOp::Put {
            entry,
            meta: PutMeta {
                issued_round: 1,
                order: 2,
                needs_ack: false,
                issuer: NodeId(0),
            },
        };
        assert_eq!(put.position(), 7);
        let get = DhtOp::Get {
            position: 11,
            max_ticket: u64::MAX,
            request: RequestId::new(ProcessId(2), 3),
            requester: NodeId(4),
        };
        assert_eq!(get.position(), 11);
    }

    #[test]
    fn messages_are_cloneable_and_comparable() {
        let a = SkueueMsg::Aggregate {
            batch: Batch::empty(),
        };
        assert_eq!(a.clone(), a);
        let b = SkueueMsg::UpdateOver;
        assert_ne!(a, b);
    }
}
