//! The cluster driver: the public API a user of the library works with.
//!
//! [`SkueueCluster`] (aliased as [`Skueue`]) owns a [`Simulation`] of
//! [`SkueueNode`]s, one per virtual node (three per process), plus the
//! bookkeeping needed to inject requests, drive rounds, and resolve results.
//! The API has three pieces:
//!
//! 1. **Construction** goes through the fluent, validating
//!    [`SkueueCluster::builder`]:
//!
//!    ```
//!    use skueue_core::Skueue;
//!
//!    let cluster: Skueue = Skueue::builder().processes(8).seed(42).build()?;
//!    # drop(cluster);
//!    # Ok::<(), skueue_core::BuildError>(())
//!    ```
//!
//! 2. **Operations are typed tickets.**  [`SkueueCluster::enqueue`] /
//!    [`SkueueCluster::dequeue`] (or `push`/`pop` in stack mode, usually via
//!    a per-process [`ClientHandle`] from [`SkueueCluster::client`]) return
//!    an [`OpTicket`]; [`SkueueCluster::run_until_done`],
//!    [`SkueueCluster::outcome`] and [`SkueueCluster::status`] resolve
//!    tickets to structured [`OpOutcome`]s, so callers never scan the raw
//!    execution history to learn what a dequeue returned:
//!
//!    ```
//!    use skueue_core::Skueue;
//!    use skueue_sim::ids::ProcessId;
//!
//!    let mut cluster = Skueue::builder().processes(8).seed(42).build()?;
//!    let put = cluster.client(ProcessId(0)).enqueue(7)?;
//!    let got = cluster.client(ProcessId(5)).dequeue()?;
//!    let outcomes = cluster.run_until_done(&[put, got], 500)?;
//!    assert_eq!(outcomes[1].value(), Some(7));
//!    # Ok::<(), Box<dyn std::error::Error>>(())
//!    ```
//!
//! 3. **One completion stream.**  Every completed operation is published as
//!    a [`CompletionEvent`] to the observers registered with
//!    [`SkueueCluster::on_complete`]; the execution
//!    [`History`] handed to `skueue-verify` is itself built from that same
//!    stream, so workloads, benches and the verifier all see identical data.
//!
//! [`SkueueCluster::join`] / [`SkueueCluster::leave`] add or remove
//! processes through the Section IV protocol, and accessor methods expose
//! the measurements the paper reports (per-request round counts, batch
//! sizes, per-node element counts, …).

use crate::batch::BatchOp;
use crate::builder::SkueueBuilder;
use crate::client::ClientHandle;
use crate::config::{Mode, ProtocolConfig};
use crate::messages::SkueueMsg;
use crate::node::SkueueNode;
use crate::ticket::{CompletionEvent, OpOutcome, OpStatus, OpTicket};
use skueue_dht::load_stats;
use skueue_dht::{LoadStats, Payload};
use skueue_overlay::{
    recommended_bit_budget, LabelHasher, LocalView, NeighborInfo, Topology, VKind, VirtualId,
};
use skueue_shard::{ShardId, ShardMap, ShardRouter};
use skueue_sim::ids::{NodeId, ProcessId, RequestId};
use skueue_sim::metrics::Histogram;
use skueue_sim::{ExecMode, SimConfig, SimError, Simulation};
use skueue_trace::{
    export_chrome_trace, export_chrome_trace_with_runtime, TraceAnalysis, TraceEvent, TraceId,
    TraceLevel, TraceLog, TraceRecord,
};
use skueue_verify::{History, OpKind};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Source of per-instance cluster ids, stamped into every [`OpTicket`] so a
/// ticket can never resolve against a cluster other than the one that
/// issued it (request ids alone are deterministic and collide across
/// clusters).
static NEXT_CLUSTER_ID: AtomicU64 = AtomicU64::new(0);

/// Errors surfaced by the cluster driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// The requested process does not exist or has left.
    UnknownProcess(ProcessId),
    /// The process is not an integrated member (still joining or leaving).
    ProcessNotActive(ProcessId),
    /// A queue operation was issued on a stack cluster or vice versa.
    WrongMode {
        /// The mode the called operation belongs to.
        required: Mode,
        /// The mode the cluster actually runs.
        actual: Mode,
    },
    /// The process currently hosting the anchor cannot leave (documented
    /// restriction of this reproduction).  With `shards > 1` every shard's
    /// anchor process is pinned this way.
    AnchorCannotLeave(ProcessId),
    /// A join resolved to an anchor shard that has no active member to
    /// bootstrap from (possible only when `shards` exceeds the number of
    /// live processes and the hash left a shard unpopulated).
    ShardHasNoMembers {
        /// The empty target shard.
        shard: ShardId,
    },
    /// A ticket issued by a different cluster was passed to
    /// [`SkueueCluster::run_until_done`]; it can never complete here.
    ForeignTicket(OpTicket),
    /// The simulation reported an error.
    Sim(SimError),
    /// A run exceeded its round budget before the condition became true.
    RoundLimitExceeded {
        /// The exceeded budget.
        limit: u64,
        /// Requests still open when the budget ran out.
        open_requests: usize,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::UnknownProcess(p) => write!(f, "unknown process {p}"),
            ClusterError::ProcessNotActive(p) => write!(f, "process {p} is not active"),
            ClusterError::WrongMode { required, actual } => write!(
                f,
                "operation requires {required:?} mode but the cluster runs in {actual:?} mode"
            ),
            ClusterError::AnchorCannotLeave(p) => {
                write!(f, "process {p} hosts the anchor and cannot leave")
            }
            ClusterError::ShardHasNoMembers { shard } => {
                write!(
                    f,
                    "anchor shard {shard} has no active member to bootstrap from"
                )
            }
            ClusterError::ForeignTicket(t) => {
                write!(f, "{t} was issued by a different cluster")
            }
            ClusterError::Sim(e) => write!(f, "simulation error: {e}"),
            ClusterError::RoundLimitExceeded {
                limit,
                open_requests,
            } => write!(
                f,
                "round limit of {limit} exceeded with {open_requests} open requests"
            ),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<SimError> for ClusterError {
    fn from(e: SimError) -> Self {
        ClusterError::Sim(e)
    }
}

/// Lifecycle state of a process as tracked by the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcessState {
    Active,
    Joining,
    Leaving,
    Left,
}

#[derive(Debug, Clone)]
struct ProcessHandle {
    id: ProcessId,
    /// Node ids of the left/middle/right virtual nodes.
    nodes: [NodeId; 3],
    /// The anchor shard the process belongs to (deterministic by label).
    shard: ShardId,
    state: ProcessState,
    next_seq: u64,
}

/// Observer callback invoked once per completed operation.
type CompletionObserver<T> = Box<dyn FnMut(&CompletionEvent<T>)>;

/// A snapshot of the cluster's protocol-level state, reduced to the fields
/// the abstract model (`skueue-model`) also tracks — the projection both
/// sides of a conformance lockstep compare after quiescing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterProjection {
    /// Number of integrated member processes.
    pub active_processes: usize,
    /// Elements currently queued across all shard anchors' windows.
    pub queued_elements: u64,
    /// Update phases the (first) anchor has started so far.
    pub phases_started: u64,
    /// Nodes currently participating in an update phase.
    pub open_update_phases: usize,
    /// Nodes whose batching is suspended by an update phase.
    pub suspended_nodes: usize,
    /// Nodes whose latest `Aggregate` is unconfirmed (credit out).
    pub unacked_aggregates: usize,
    /// Aggregation waves in flight across all nodes.
    pub waves_in_flight: usize,
}

/// A running Skueue deployment (queue or stack) on top of the simulation
/// substrate, generic over the element payload type `T` (default `u64`).
/// See the [module docs](self) for the API tour.
pub struct SkueueCluster<T: Payload = u64> {
    sim: Simulation<SkueueNode<T>>,
    cfg: ProtocolConfig,
    hasher: LabelHasher,
    /// Deterministic process→shard assignment (cached splittable hashing).
    router: ShardRouter,
    /// Per-shard distance-halving bit budget (derived from each shard's
    /// initial size unless the configuration pins an explicit budget).
    shard_bit_budgets: Vec<u32>,
    processes: Vec<ProcessHandle>,
    index_of: HashMap<ProcessId, usize>,
    history: History<T>,
    outcomes: HashMap<RequestId, OpOutcome<T>>,
    observers: Vec<CompletionObserver<T>>,
    issued: u64,
    next_process_id: u64,
    /// This instance's id (see [`NEXT_CLUSTER_ID`]).
    cluster_id: u64,
    /// Scratch for the per-round completion sweep, reused across rounds.
    completion_scratch: Vec<skueue_verify::OpRecord<T>>,
    /// Scratch holding the indices of the nodes to sweep for completions.
    visit_scratch: Vec<usize>,
    /// Nodes mutated driver-side since the last round (request injection can
    /// complete operations immediately via the stack's local combining, and
    /// such a node is not necessarily visited by the next round).
    dirty_nodes: Vec<NodeId>,
    /// Number of processes currently joining or leaving; the per-round state
    /// refresh is skipped while it is zero.
    transitioning: usize,
    /// The merged lifecycle-trace log: node recorders are drained into it by
    /// the same deterministic sweep that collects completions, so the log is
    /// byte-identical across thread counts.  Stays empty at
    /// [`TraceLevel::Off`].
    trace_log: TraceLog,
}

/// Short alias for [`SkueueCluster`]; lets code read
/// `Skueue::builder()…build()` (and `Skueue::<String>::builder()` for
/// non-default payloads).
pub type Skueue<T = u64> = SkueueCluster<T>;

impl<T: Payload> std::fmt::Debug for SkueueCluster<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SkueueCluster")
            .field("mode", &self.cfg.mode)
            .field("round", &self.sim.round())
            .field("processes", &self.processes.len())
            .field("active_processes", &self.active_processes())
            .field("requests_issued", &self.issued)
            .field("requests_completed", &self.requests_completed())
            .field("observers", &self.observers.len())
            .finish_non_exhaustive()
    }
}

impl<T: Payload> SkueueCluster<T> {
    /// Starts the fluent builder — the entry point for constructing
    /// clusters.
    pub fn builder() -> SkueueBuilder<T> {
        SkueueBuilder::new()
    }

    /// Builds the cluster from an already-validated configuration (the
    /// builder's backend).
    pub(crate) fn from_config(
        n: usize,
        mut cfg: ProtocolConfig,
        sim_cfg: SimConfig,
        exec: ExecMode,
    ) -> Self {
        debug_assert!(n >= 1, "validated by SkueueBuilder::build");
        // Normalise the shard count (stack mode pins it to 1) so every
        // consumer — nodes, verifier, accessors — sees the effective value.
        cfg.shards = cfg.effective_shards();
        let hasher = cfg.hasher();
        let shard_map = ShardMap::new(cfg.shards as u32, cfg.hash_seed);
        let router = ShardRouter::new(shard_map);
        let process_ids: Vec<ProcessId> = (0..n as u64).map(ProcessId).collect();

        // Partition the processes into their shards and build one topology —
        // cycle, aggregation tree, anchor — per populated shard.  With
        // `shards == 1` this is exactly the old single global topology.
        let mut groups: Vec<Vec<ProcessId>> = vec![Vec::new(); cfg.shards];
        for &pid in &process_ids {
            groups[router.route(pid) as usize].push(pid);
        }
        let topologies: Vec<Option<Topology>> = groups
            .iter()
            .map(|group| {
                (!group.is_empty()).then(|| {
                    Topology::build(group, hasher).expect("non-empty, duplicate-free process set")
                })
            })
            .collect();
        // Per-shard routing budget: an explicit configuration applies
        // everywhere; otherwise each shard derives it from its own size
        // (shorter distance-halving routes inside smaller shard cycles).
        let explicit_budget = cfg.bit_budget != 0;
        let shard_bit_budgets: Vec<u32> = groups
            .iter()
            .map(|group| {
                if explicit_budget {
                    cfg.bit_budget
                } else {
                    recommended_bit_budget(group.len().max(1))
                }
            })
            .collect();
        // The stored cfg keeps the whole-system derivation for introspection
        // (`config()`); node behaviour is governed by the per-shard budgets
        // above, which coincide with this value exactly when shards == 1.
        if cfg.bit_budget == 0 {
            cfg.bit_budget = recommended_bit_budget(n);
        }

        let mut sim = Simulation::new(sim_cfg).expect("validated by SkueueBuilder::build");
        // One simulation lane per anchor shard: all protocol traffic is
        // intra-shard, so each lane's round is independent and the parallel
        // backend can run lanes on worker threads without any cross-lane
        // routing.  With `shards == 1` this is exactly the old layout.
        sim.configure_lanes(cfg.shards)
            .expect("fresh simulation has no nodes yet");
        // Pre-size every lane: the shard populations are known, and node
        // slots are large enough that letting several lane vectors grow by
        // doubling costs milliseconds of memcpy on big clusters.
        for (shard, group) in groups.iter().enumerate() {
            if !group.is_empty() {
                sim.reserve_nodes_in_lane(shard, group.len() * 3);
            }
        }
        // Node ids are assigned densely: process i gets nodes 3i, 3i+1, 3i+2
        // in VKind order (Left, Middle, Right) — independent of sharding.
        let node_of =
            |vid: VirtualId| -> NodeId { NodeId(vid.process.raw() * 3 + vid.kind.index() as u64) };
        let mut processes = Vec::with_capacity(n);
        let mut index_of = HashMap::with_capacity(n);
        for (i, &pid) in process_ids.iter().enumerate() {
            let shard = router.route(pid);
            let topology = topologies[shard as usize]
                .as_ref()
                .expect("pid was grouped into this shard");
            let anchor_vid = topology.anchor();
            let mut node_cfg = cfg;
            node_cfg.bit_budget = shard_bit_budgets[shard as usize];
            let mut nodes = [NodeId(0); 3];
            for kind in VKind::ALL {
                let vid = VirtualId::new(pid, kind);
                let view = if cfg.middle_fingers {
                    topology
                        .local_view_with_fingers(vid, &node_of)
                        .expect("vid from own topology")
                } else {
                    topology
                        .local_view(vid, &node_of)
                        .expect("vid from own topology")
                };
                let mut node = SkueueNode::<T>::new(node_cfg, shard, view, vid == anchor_vid);
                // Tag the recorder with the dense node index (known ahead of
                // registration thanks to the dense id scheme above).
                node.trace_recorder_mut().attach(node_of(vid).0, shard);
                let assigned = sim.add_node_in_lane(shard as usize, node);
                debug_assert_eq!(assigned, node_of(vid));
                nodes[kind.index()] = assigned;
            }
            processes.push(ProcessHandle {
                id: pid,
                nodes,
                shard,
                state: ProcessState::Active,
                next_seq: 0,
            });
            index_of.insert(pid, i);
        }

        if exec.is_parallel() {
            // Worker threads only help when there is more than one lane to
            // run; `enable_parallel` quietly stays single-threaded otherwise.
            sim.enable_parallel(exec.threads());
        }

        SkueueCluster {
            sim,
            cfg,
            hasher,
            router,
            shard_bit_budgets,
            processes,
            index_of,
            history: History::new(),
            outcomes: HashMap::new(),
            observers: Vec::new(),
            issued: 0,
            next_process_id: n as u64,
            cluster_id: NEXT_CLUSTER_ID.fetch_add(1, Ordering::Relaxed),
            completion_scratch: Vec::new(),
            visit_scratch: Vec::new(),
            dirty_nodes: Vec::new(),
            transitioning: 0,
            trace_log: TraceLog::new(),
        }
    }

    // ------------------------------------------------------------------
    // Introspection.
    // ------------------------------------------------------------------

    /// The protocol configuration.
    pub fn config(&self) -> &ProtocolConfig {
        &self.cfg
    }

    /// The current round.
    pub fn round(&self) -> u64 {
        self.sim.round()
    }

    /// Number of processes that are integrated members.
    pub fn active_processes(&self) -> usize {
        self.processes
            .iter()
            .filter(|p| p.state == ProcessState::Active)
            .count()
    }

    /// Ids of all currently active processes.
    pub fn active_process_ids(&self) -> Vec<ProcessId> {
        self.processes
            .iter()
            .filter(|p| p.state == ProcessState::Active)
            .map(|p| p.id)
            .collect()
    }

    /// Total number of requests issued so far.
    pub fn requests_issued(&self) -> u64 {
        self.issued
    }

    /// Number of requests that have completed (records in the history).
    pub fn requests_completed(&self) -> u64 {
        self.history.len() as u64
    }

    /// Number of requests still in flight.
    pub fn open_requests(&self) -> u64 {
        self.issued - self.requests_completed()
    }

    /// The execution history collected so far (one record per completed
    /// request, built from the same completion stream the
    /// [`on_complete`](Self::on_complete) observers see).  Pass it to the
    /// `skueue-verify` checkers; to learn what an individual operation
    /// returned, use [`outcome`](Self::outcome) instead.
    pub fn history(&self) -> &History<T> {
        &self.history
    }

    /// Consumes the cluster and returns the history.
    pub fn into_history(self) -> History<T> {
        self.history
    }

    /// Substrate metrics (messages, delays, …).
    pub fn sim_metrics(&self) -> &skueue_sim::SimMetrics {
        self.sim.metrics()
    }

    /// Current anchor window/counter state (from whichever node holds it).
    /// Sharded deployments have one anchor per shard; this returns the first
    /// one found — use [`Self::shard_anchor_states`] for the full picture.
    pub fn anchor_state(&self) -> Option<crate::anchor::AnchorState> {
        self.sim
            .iter()
            .find_map(|(_, node)| node.anchor_state().copied())
    }

    /// Number of anchor shards this deployment runs (1 when unsharded).
    pub fn shards(&self) -> usize {
        self.cfg.shards
    }

    /// Number of worker threads the simulation's round loop runs on (1 =
    /// single-threaded backend; see [`SkueueBuilder::threads`]).
    pub fn parallel_threads(&self) -> usize {
        self.sim.parallel_threads()
    }

    /// The model-conformance projection of the cluster's current state (see
    /// [`ClusterProjection`]).
    pub fn projection(&self) -> ClusterProjection {
        let mut open_update_phases = 0;
        let mut suspended_nodes = 0;
        let mut unacked_aggregates = 0;
        let mut waves_in_flight = 0;
        for (_, node) in self.sim.iter() {
            if node.update_phase().is_some() {
                open_update_phases += 1;
            }
            if node.is_suspended() {
                suspended_nodes += 1;
            }
            if node.has_unacked_aggregate() {
                unacked_aggregates += 1;
            }
            waves_in_flight += node.waves_in_flight();
        }
        ClusterProjection {
            active_processes: self.active_processes(),
            queued_elements: self.queued_elements(),
            phases_started: self.anchor_state().map(|a| a.phases_started).unwrap_or(0),
            open_update_phases,
            suspended_nodes,
            unacked_aggregates,
            waves_in_flight,
        }
    }

    /// The deterministic shard layout — hand this to
    /// `skueue_verify::check_queue_sharded` together with
    /// [`Self::history`].
    pub fn shard_map(&self) -> ShardMap {
        *self.router.map()
    }

    /// The shard a known process belongs to.
    pub fn shard_of_process(&self, process: ProcessId) -> Option<ShardId> {
        self.index_of
            .get(&process)
            .map(|&idx| self.processes[idx].shard)
    }

    /// The anchor state currently held in each shard (indexed by shard id).
    /// `None` for a shard that is unpopulated — or whose anchor state is
    /// momentarily in flight between nodes (anchor hand-off).
    pub fn shard_anchor_states(&self) -> Vec<Option<crate::anchor::AnchorState>> {
        let mut out = vec![None; self.cfg.shards];
        for (_, node) in self.sim.iter() {
            if let Some(state) = node.anchor_state() {
                out[node.shard() as usize] = Some(*state);
            }
        }
        out
    }

    /// Number of aggregation waves each shard's anchor has assigned so far
    /// (indexed by shard id; 0 for idle or unpopulated shards).  The direct
    /// measure of how work spreads over the shards.
    pub fn shard_wave_counts(&self) -> Vec<u64> {
        self.shard_anchor_states()
            .iter()
            .map(|s| s.map(|a| a.epoch).unwrap_or(0))
            .collect()
    }

    /// Total number of elements currently queued across all shard anchors'
    /// windows.
    pub fn queued_elements(&self) -> u64 {
        self.shard_anchor_states()
            .iter()
            .flatten()
            .map(|a| a.size())
            .sum()
    }

    /// Per-node stored-element counts (fairness accounting, Corollary 19).
    pub fn stored_elements_per_node(&self) -> Vec<u64> {
        self.sim
            .iter()
            .filter(|(_, node)| node.is_integrated())
            .map(|(_, node)| node.stored_elements() as u64)
            .collect()
    }

    /// Load statistics over the per-node element counts.
    pub fn fairness(&self) -> Option<LoadStats> {
        let counts = self.stored_elements_per_node();
        load_stats(&counts)
    }

    /// Histogram of the sizes of every batch sent in the system
    /// (Theorem 18 / Theorem 20).
    pub fn batch_size_histogram(&self) -> Histogram {
        let mut h = Histogram::new();
        for (_, node) in self.sim.iter() {
            h.merge(&node.stats().batch_sizes);
        }
        h
    }

    /// Histogram of DHT routing hop counts per operation (Lemma 3; the
    /// `hops_per_op` view of Stage 4).
    pub fn dht_hop_histogram(&self) -> Histogram {
        let mut h = Histogram::new();
        for (_, node) in self.sim.iter() {
            h.merge(&node.stats().dht_hops);
        }
        h
    }

    /// Histogram of DHT operations carried per `DhtBatch` message — the
    /// direct measure of the per-destination coalescing win (mean ≫ 1 means
    /// routed ops actually share hops).
    pub fn dht_ops_per_message_histogram(&self) -> Histogram {
        let mut h = Histogram::new();
        for (_, node) in self.sim.iter() {
            h.merge(&node.stats().dht_ops_per_message);
        }
        h
    }

    /// Histogram of per-node aggregation waves in flight, sampled whenever a
    /// wave is opened (`max ≥ 2` shows the pipeline overlapping waves).
    pub fn waves_in_flight_histogram(&self) -> Histogram {
        let mut h = Histogram::new();
        for (_, node) in self.sim.iter() {
            h.merge(&node.stats().waves_in_flight);
        }
        h
    }

    /// Total `DhtReply` entries that arrived for a request no node knows —
    /// the benign reply/departure race during join/leave (traced per node in
    /// `NodeStats::unmatched_dht_replies`).
    pub fn unmatched_dht_replies(&self) -> u64 {
        self.sim
            .iter()
            .map(|(_, n)| n.stats().unmatched_dht_replies)
            .sum()
    }

    /// Total number of requests resolved by the stack's local combining.
    pub fn locally_combined(&self) -> u64 {
        self.sim
            .iter()
            .map(|(_, n)| n.stats().locally_combined)
            .sum()
    }

    // ------------------------------------------------------------------
    // Lifecycle tracing (skueue-trace).
    // ------------------------------------------------------------------

    /// The lifecycle-tracing level this cluster records at (set via
    /// [`SkueueBuilder::trace`]; [`TraceLevel::Off`] by default).
    pub fn trace_level(&self) -> TraceLevel {
        self.cfg.trace_level
    }

    /// The merged lifecycle-trace log collected so far: every node's
    /// lane-local recorder drained in the deterministic completion-sweep
    /// order, so for a given seed the log is byte-identical across thread
    /// counts.  Empty at [`TraceLevel::Off`].
    pub fn trace_log(&self) -> &TraceLog {
        &self.trace_log
    }

    /// Per-op span trees and per-stage round-latency percentiles derived
    /// from the trace log (see [`TraceAnalysis`]).
    pub fn trace_analysis(&self) -> TraceAnalysis {
        TraceAnalysis::from_log(&self.trace_log)
    }

    /// Chrome trace-event JSON of the trace log (load in Perfetto or
    /// `chrome://tracing`): one track per shard lane, one slice per
    /// completed op span, instants for wave assignments and churn.
    /// Deterministic — byte-identical across thread counts for one seed.
    pub fn export_chrome_trace(&self) -> String {
        export_chrome_trace(&self.trace_log)
    }

    /// Like [`Self::export_chrome_trace`], with additional wall-clock
    /// worker-lane tracks (per-lane busy and barrier-wait slices from the
    /// parallel backend's metrics).  Wall-clock data varies run to run, so
    /// this variant is *not* byte-identical across executions — use the
    /// plain export for determinism checks.
    pub fn export_chrome_trace_with_runtime(&self) -> String {
        let m = self.sim.metrics();
        export_chrome_trace_with_runtime(
            &self.trace_log,
            &m.lane_busy_ns,
            &m.lane_barrier_wait_ns,
            &m.lane_thread_tokens,
        )
    }

    // ------------------------------------------------------------------
    // Request injection.
    // ------------------------------------------------------------------

    /// A request-issuing [`ClientHandle`] bound to `process`.
    ///
    /// The handle is a cheap borrow; validity of the process is checked when
    /// an operation is issued, so handles for joining processes become
    /// usable the moment the process is integrated.
    pub fn client(&mut self, process: ProcessId) -> ClientHandle<'_, T> {
        ClientHandle::new(self, process)
    }

    fn require_mode(&self, required: Mode) -> Result<(), ClusterError> {
        if self.cfg.mode != required {
            return Err(ClusterError::WrongMode {
                required,
                actual: self.cfg.mode,
            });
        }
        Ok(())
    }

    fn issue(
        &mut self,
        process: ProcessId,
        kind: BatchOp,
        value: T,
    ) -> Result<OpTicket, ClusterError> {
        let idx = *self
            .index_of
            .get(&process)
            .ok_or(ClusterError::UnknownProcess(process))?;
        if self.processes[idx].state != ProcessState::Active {
            return Err(ClusterError::ProcessNotActive(process));
        }
        let seq = self.processes[idx].next_seq;
        self.processes[idx].next_seq += 1;
        let id = RequestId::new(process, seq);
        // Requests are generated at the process's middle virtual node.
        let node_id = self.processes[idx].nodes[VKind::Middle.index()];
        let round = self.sim.round();
        let node = self
            .sim
            .node_mut(node_id)
            .expect("node registered at build time");
        node.generate_op(id, kind, value, round);
        // New own work re-arms the node's (otherwise demand-driven) wave
        // timeout.
        let _ = self.sim.refresh_timeout_interest(node_id);
        // Local combining may have completed records right here, and the
        // node is not necessarily visited next round — remember to sweep it.
        self.dirty_nodes.push(node_id);
        self.issued += 1;
        let op_kind = match kind {
            BatchOp::Enqueue => OpKind::Enqueue,
            BatchOp::Dequeue => OpKind::Dequeue,
        };
        Ok(OpTicket::new(self.cluster_id, id, op_kind, round))
    }

    /// Issues an `ENQUEUE(value)` at `process` and returns its ticket.
    pub fn enqueue(&mut self, process: ProcessId, value: T) -> Result<OpTicket, ClusterError> {
        self.require_mode(Mode::Queue)?;
        self.issue(process, BatchOp::Enqueue, value)
    }

    /// Issues a `DEQUEUE()` at `process` and returns its ticket.
    pub fn dequeue(&mut self, process: ProcessId) -> Result<OpTicket, ClusterError> {
        self.require_mode(Mode::Queue)?;
        self.issue(process, BatchOp::Dequeue, T::default())
    }

    /// Issues a `PUSH(value)` at `process` (stack mode) and returns its
    /// ticket.
    pub fn push(&mut self, process: ProcessId, value: T) -> Result<OpTicket, ClusterError> {
        self.require_mode(Mode::Stack)?;
        self.issue(process, BatchOp::Enqueue, value)
    }

    /// Issues a `POP()` at `process` (stack mode) and returns its ticket.
    pub fn pop(&mut self, process: ProcessId) -> Result<OpTicket, ClusterError> {
        self.require_mode(Mode::Stack)?;
        self.issue(process, BatchOp::Dequeue, T::default())
    }

    /// Issues an operation without caring about queue/stack naming (used by
    /// the workload generators, usually through
    /// [`ClientHandle::issue`]).
    pub fn issue_op(
        &mut self,
        process: ProcessId,
        is_insert: bool,
        value: T,
    ) -> Result<OpTicket, ClusterError> {
        self.issue(
            process,
            if is_insert {
                BatchOp::Enqueue
            } else {
                BatchOp::Dequeue
            },
            value,
        )
    }

    // ------------------------------------------------------------------
    // Resolving tickets.
    // ------------------------------------------------------------------

    /// The structured outcome of a completed operation, or `None` while it
    /// is still in flight.  A ticket issued by a *different* cluster always
    /// resolves to `None` (tickets carry their issuing cluster's identity).
    pub fn outcome(&self, ticket: OpTicket) -> Option<OpOutcome<T>> {
        if ticket.cluster_id() != self.cluster_id {
            return None;
        }
        self.outcomes.get(&ticket.request_id()).cloned()
    }

    /// Completion state of a ticket.  A ticket issued by a different
    /// cluster reports [`OpStatus::Foreign`] — it can never become `Done`
    /// here, so polling it further is pointless.
    pub fn status(&self, ticket: OpTicket) -> OpStatus<T> {
        if ticket.cluster_id() != self.cluster_id {
            return OpStatus::Foreign;
        }
        match self.outcome(ticket) {
            Some(outcome) => OpStatus::Done(outcome),
            None => OpStatus::Pending,
        }
    }

    /// Registers an observer on the completion stream; it fires once per
    /// completed operation, in completion order, including operations that
    /// complete within the registering call's round.  All registered
    /// observers see every event.
    pub fn on_complete<F>(&mut self, observer: F)
    where
        F: FnMut(&CompletionEvent<T>) + 'static,
    {
        self.observers.push(Box::new(observer));
    }

    /// Runs rounds until every ticket in `tickets` has completed (or the
    /// budget is exhausted — `max_rounds == 0` means unlimited) and returns
    /// their outcomes in the same order as `tickets`.
    ///
    /// A ticket issued by a different cluster can never complete here and is
    /// rejected up front with [`ClusterError::ForeignTicket`].  Unrelated
    /// in-flight operations keep making progress but are not waited for; use
    /// [`run_until_all_complete`](Self::run_until_all_complete) to drain
    /// everything.
    pub fn run_until_done(
        &mut self,
        tickets: &[OpTicket],
        max_rounds: u64,
    ) -> Result<Vec<OpOutcome<T>>, ClusterError> {
        if let Some(foreign) = tickets.iter().find(|t| t.cluster_id() != self.cluster_id) {
            return Err(ClusterError::ForeignTicket(*foreign));
        }
        // Track only the still-pending set against the completion stream
        // (the history is built from it, in completion order): each round
        // costs O(new completions), not O(tickets) outcome re-polls.
        // Presence check only — `outcome()` would clone the payload-bearing
        // `OpOutcome<T>` per ticket just to discard it.  (Foreign tickets
        // were rejected above, so the map key is authoritative.)
        let mut pending: std::collections::HashSet<RequestId> = tickets
            .iter()
            .filter(|t| !self.outcomes.contains_key(&t.request_id()))
            .map(|t| t.request_id())
            .collect();
        let mut watermark = self.history.len();
        let start = self.sim.round();
        while !pending.is_empty() {
            if max_rounds > 0 && self.sim.round() - start >= max_rounds {
                return Err(ClusterError::RoundLimitExceeded {
                    limit: max_rounds,
                    open_requests: pending.len(),
                });
            }
            self.run_round();
            for record in &self.history.records()[watermark..] {
                pending.remove(&record.id);
            }
            watermark = self.history.len();
        }
        Ok(tickets
            .iter()
            .map(|t| self.outcome(*t).expect("loop above waited for completion"))
            .collect())
    }

    // ------------------------------------------------------------------
    // Join / leave.
    // ------------------------------------------------------------------

    /// Starts the `JOIN()` of a brand-new process via the given bootstrap
    /// process (defaults to the first active process when `None`).  Returns
    /// the new process id.  The process becomes usable once its three
    /// virtual nodes have been integrated (see [`Self::process_is_active`]).
    ///
    /// Sharded deployments: the joiner's shard is determined by its label
    /// (deterministic, like every other process), and the join must
    /// bootstrap through a member of that shard's cycle — a `bootstrap`
    /// from a different shard is treated as a hint and replaced by the
    /// first active member of the target shard.
    pub fn join(&mut self, bootstrap: Option<ProcessId>) -> Result<ProcessId, ClusterError> {
        let pid = ProcessId(self.next_process_id);
        let shard = self.router.route(pid);
        let same_shard_bootstrap = match bootstrap {
            Some(p) => {
                let idx = *self
                    .index_of
                    .get(&p)
                    .ok_or(ClusterError::UnknownProcess(p))?;
                if self.processes[idx].state != ProcessState::Active {
                    return Err(ClusterError::ProcessNotActive(p));
                }
                (self.processes[idx].shard == shard).then_some(p)
            }
            None => None,
        };
        let bootstrap_pid = match same_shard_bootstrap {
            Some(p) => p,
            None => self
                .processes
                .iter()
                .find(|h| h.state == ProcessState::Active && h.shard == shard)
                .map(|h| h.id)
                .ok_or(ClusterError::ShardHasNoMembers { shard })?,
        };
        let bootstrap_idx = *self
            .index_of
            .get(&bootstrap_pid)
            .ok_or(ClusterError::UnknownProcess(bootstrap_pid))?;
        let bootstrap_node = self.processes[bootstrap_idx].nodes[VKind::Middle.index()];

        self.next_process_id += 1;
        let middle_label = self.hasher.process_label(pid);
        let mut nodes = [NodeId(0); 3];
        // First create the three nodes so we know their ids, then fill in the
        // sibling views.
        let mut created: Vec<(VKind, NodeId)> = Vec::with_capacity(3);
        for kind in VKind::ALL {
            let label = kind.label_from_middle(middle_label);
            let vid = VirtualId::new(pid, kind);
            let me = NeighborInfo::new(NodeId(0), vid, label); // placeholder id, fixed below
            let view = LocalView {
                me,
                pred: me,
                succ: me,
                siblings: [me, me, me],
                middle_finger: None,
            };
            let mut node_cfg = self.cfg;
            node_cfg.bit_budget = self.shard_bit_budgets[shard as usize];
            let node = SkueueNode::new_joining(node_cfg, shard, view);
            // Joining nodes live in their shard's lane like everyone else.
            let id = self.sim.add_node_in_lane(shard as usize, node);
            created.push((kind, id));
            nodes[kind.index()] = id;
        }
        // Fix up identities and sibling pointers now that all ids are known.
        let siblings: [NeighborInfo; 3] = [
            NeighborInfo::new(
                nodes[0],
                VirtualId::left(pid),
                VKind::Left.label_from_middle(middle_label),
            ),
            NeighborInfo::new(nodes[1], VirtualId::middle(pid), middle_label),
            NeighborInfo::new(
                nodes[2],
                VirtualId::right(pid),
                VKind::Right.label_from_middle(middle_label),
            ),
        ];
        for (kind, id) in created {
            let me = siblings[kind.index()];
            let node = self.sim.node_mut(id).expect("just created");
            // Joining nodes start without a routing finger: `None` is always
            // safe (the linear middle-search takes over) and the finger is an
            // optimisation only — see `LocalView::middle_finger`.
            node.view = LocalView {
                me,
                pred: me,
                succ: me,
                siblings,
                middle_finger: None,
            };
            node.set_bootstrap(bootstrap_node);
            node.trace_recorder_mut().attach(id.0, shard);
        }
        self.processes.push(ProcessHandle {
            id: pid,
            nodes,
            shard,
            state: ProcessState::Joining,
            next_seq: 0,
        });
        self.index_of.insert(pid, self.processes.len() - 1);
        self.transitioning += 1;
        Ok(pid)
    }

    /// Starts the `LEAVE()` of a process.  The process stops generating
    /// requests immediately; its virtual nodes leave once their outstanding
    /// work has drained and the next update phase has run.
    pub fn leave(&mut self, process: ProcessId) -> Result<(), ClusterError> {
        let idx = *self
            .index_of
            .get(&process)
            .ok_or(ClusterError::UnknownProcess(process))?;
        if self.processes[idx].state != ProcessState::Active {
            return Err(ClusterError::ProcessNotActive(process));
        }
        // The anchor's host process is pinned (documented restriction).
        let nodes = self.processes[idx].nodes;
        for node_id in nodes {
            if self
                .sim
                .node(node_id)
                .map(|n| n.is_anchor_node())
                .unwrap_or(false)
            {
                return Err(ClusterError::AnchorCannotLeave(process));
            }
        }
        self.processes[idx].state = ProcessState::Leaving;
        self.transitioning += 1;
        // Routing fingers are maintained by the driver, not the protocol:
        // drop every finger aimed at the departing process *now*, while its
        // nodes are still alive and draining.  In-flight finger-routed
        // messages still land on a live node; new routes fall back to the
        // (always correct) linear middle-search until re-derived views
        // repopulate the finger.
        if self.cfg.middle_fingers {
            let shard = self.processes[idx].shard;
            for h in &self.processes {
                if h.shard != shard {
                    continue;
                }
                for &nid in &h.nodes {
                    if let Some(node) = self.sim.node_mut(nid) {
                        if node
                            .view
                            .middle_finger
                            .is_some_and(|f| f.vid.process == process)
                        {
                            node.view.middle_finger = None;
                        }
                    }
                }
            }
        }
        for node_id in nodes {
            if let Some(node) = self.sim.node_mut(node_id) {
                node.request_leave();
                // The leave wish re-arms the node's timeout (it must issue
                // its `LeaveRequest` even while a batch is pending).
                let _ = self.sim.refresh_timeout_interest(node_id);
            }
        }
        Ok(())
    }

    /// True while `process` may issue requests: the driver considers it an
    /// integrated member and no `leave()` has been requested for it.  This
    /// is exactly the condition the request-issuing methods check — unlike
    /// [`process_is_active`](Self::process_is_active), which only looks at
    /// node integration and stays true for a process whose leave is pending.
    pub fn process_may_issue(&self, process: ProcessId) -> bool {
        match self.index_of.get(&process) {
            Some(&idx) => self.processes[idx].state == ProcessState::Active,
            None => false,
        }
    }

    /// True once all three virtual nodes of a process are integrated members.
    pub fn process_is_active(&self, process: ProcessId) -> bool {
        match self.index_of.get(&process) {
            Some(&idx) => self.processes[idx].nodes.iter().all(|&n| {
                self.sim
                    .node(n)
                    .map(|node| node.is_integrated())
                    .unwrap_or(false)
            }),
            None => false,
        }
    }

    /// True once all three virtual nodes of a leaving process have drained.
    pub fn process_has_left(&self, process: ProcessId) -> bool {
        match self.index_of.get(&process) {
            Some(&idx) => self.processes[idx]
                .nodes
                .iter()
                .all(|&n| self.sim.node(n).map(|node| node.has_left()).unwrap_or(true)),
            None => false,
        }
    }

    // ------------------------------------------------------------------
    // Driving the simulation.
    // ------------------------------------------------------------------

    /// Runs one synchronous round, publishes the round's completions to the
    /// event stream, and refreshes membership states.
    pub fn run_round(&mut self) {
        self.sim.run_round();
        self.collect_completions();
        self.refresh_process_states();
    }

    /// Runs `rounds` rounds.
    pub fn run_rounds(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.run_round();
        }
    }

    /// Runs until every issued request has completed, or the round budget is
    /// exhausted (`max_rounds == 0` means unlimited).
    pub fn run_until_all_complete(&mut self, max_rounds: u64) -> Result<u64, ClusterError> {
        let start = self.sim.round();
        while self.open_requests() > 0 {
            if max_rounds > 0 && self.sim.round() - start >= max_rounds {
                return Err(ClusterError::RoundLimitExceeded {
                    limit: max_rounds,
                    open_requests: self.open_requests() as usize,
                });
            }
            self.run_round();
        }
        Ok(self.sim.round() - start)
    }

    /// Runs until the given predicate over the cluster becomes true.
    pub fn run_until<F>(&mut self, mut pred: F, max_rounds: u64) -> Result<u64, ClusterError>
    where
        F: FnMut(&SkueueCluster<T>) -> bool,
    {
        let start = self.sim.round();
        while !pred(self) {
            if max_rounds > 0 && self.sim.round() - start >= max_rounds {
                return Err(ClusterError::RoundLimitExceeded {
                    limit: max_rounds,
                    open_requests: self.open_requests() as usize,
                });
            }
            self.run_round();
        }
        Ok(self.sim.round() - start)
    }

    /// Drains completion records from every node into the single completion
    /// stream: resolve the ticket, append the record to the history, then
    /// fan the event out to the registered observers.  Uses a reused scratch
    /// vector and leaves each node's buffer (and capacity) in place, so a
    /// quiet round costs one emptiness check per node and zero allocations.
    fn collect_completions(&mut self) {
        let mut drained = std::mem::take(&mut self.completion_scratch);
        debug_assert!(drained.is_empty());
        // Only nodes visited this round (plus driver-touched ones) can have
        // produced records — sweeping all of them would be O(nodes) per
        // round.
        let mut visits = std::mem::take(&mut self.visit_scratch);
        visits.clear();
        visits.extend_from_slice(self.sim.visited_last_round());
        let tracing = !self.cfg.trace_level.is_off();
        for &idx in &visits {
            let id = NodeId(idx as u64);
            if let Some(node) = self.sim.node_mut(id) {
                let prev = drained.len();
                if node.has_completed() {
                    node.drain_completed_into(&mut drained);
                }
                if tracing {
                    Self::drain_node_trace(node, id, &mut self.trace_log, &drained[prev..]);
                }
            }
        }
        self.visit_scratch = visits;
        let mut dirty = std::mem::take(&mut self.dirty_nodes);
        for id in dirty.drain(..) {
            if let Some(node) = self.sim.node_mut(id) {
                let prev = drained.len();
                if node.has_completed() {
                    node.drain_completed_into(&mut drained);
                }
                if tracing {
                    Self::drain_node_trace(node, id, &mut self.trace_log, &drained[prev..]);
                }
            }
        }
        self.dirty_nodes = dirty;
        for record in drained.drain(..) {
            let outcome = OpOutcome::from_record(&record);
            let ticket =
                OpTicket::new(self.cluster_id, record.id, record.kind, record.issued_round);
            // Fan the event out first, then *move* its parts into the outcome
            // map and the history — one payload clone per completion (inside
            // `from_record`, for dequeues), exactly the pre-generic cost.
            let event = CompletionEvent {
                ticket,
                outcome,
                record,
            };
            for observer in &mut self.observers {
                observer(&event);
            }
            let CompletionEvent {
                outcome, record, ..
            } = event;
            self.outcomes.insert(record.id, outcome);
            self.history.push(record);
        }
        self.completion_scratch = drained;
    }

    /// Drains one node's lane-local trace buffer into the merged log and
    /// stamps a `Completed` instant for every completion record the node
    /// delivered in this sweep.  Completion instants are *driver-side*
    /// events: every completion site (DHT applies, replies, ⊥ dequeues,
    /// locally combined pairs) funnels through the completion sweep, so one
    /// emission point covers them all — and because the sweep order is the
    /// deterministic visit order, the merged log is byte-identical across
    /// thread counts.
    fn drain_node_trace(
        node: &mut SkueueNode<T>,
        id: NodeId,
        log: &mut TraceLog,
        records: &[skueue_verify::OpRecord<T>],
    ) {
        if node.has_trace_events() {
            node.drain_trace_into(log);
        }
        for record in records {
            log.push(TraceRecord {
                node: id.0,
                shard: node.shard(),
                event: TraceEvent::Completed {
                    op: TraceId::new(record.id.origin.0, record.id.seq),
                    round: record.completed_round,
                },
            });
        }
    }

    fn refresh_process_states(&mut self) {
        // Membership is stable almost always; skip the sweep entirely then.
        if self.transitioning == 0 {
            return;
        }
        let tracing = !self.cfg.trace_level.is_off();
        let round = self.sim.round();
        for p in &mut self.processes {
            match p.state {
                ProcessState::Joining => {
                    let all_active = p.nodes.iter().all(|&n| {
                        self.sim
                            .node(n)
                            .map(|node| node.is_integrated())
                            .unwrap_or(false)
                    });
                    if all_active {
                        p.state = ProcessState::Active;
                        self.transitioning -= 1;
                        if tracing {
                            self.trace_log.push(TraceRecord {
                                node: p.nodes[VKind::Middle.index()].0,
                                shard: p.shard,
                                event: TraceEvent::ProcessJoined {
                                    process: p.id.0,
                                    round,
                                },
                            });
                        }
                    }
                }
                ProcessState::Leaving => {
                    let all_left = p
                        .nodes
                        .iter()
                        .all(|&n| self.sim.node(n).map(|node| node.has_left()).unwrap_or(true));
                    if all_left {
                        p.state = ProcessState::Left;
                        self.transitioning -= 1;
                        for &n in &p.nodes {
                            let _ = self.sim.deactivate(n);
                        }
                        if tracing {
                            self.trace_log.push(TraceRecord {
                                node: p.nodes[VKind::Middle.index()].0,
                                shard: p.shard,
                                event: TraceEvent::ProcessLeft {
                                    process: p.id.0,
                                    round,
                                },
                            });
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// Direct access to a node (tests and diagnostics).
    pub fn node(&self, id: NodeId) -> Option<&SkueueNode<T>> {
        self.sim.node(id)
    }

    /// Iterates over all nodes (tests and diagnostics).
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &SkueueNode<T>)> {
        self.sim.iter()
    }

    /// The message kind used by the cluster (exposed for type annotations in
    /// downstream test helpers).
    pub fn message_type_hint() -> std::marker::PhantomData<SkueueMsg<T>> {
        std::marker::PhantomData
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::BuildError;
    use crate::ticket::OpOutcome;
    use skueue_verify::{check_queue, check_stack, OpKind};

    fn queue_cluster(n: usize, seed: u64) -> SkueueCluster {
        SkueueCluster::builder()
            .processes(n)
            .seed(seed)
            .build()
            .unwrap()
    }

    fn stack_cluster(n: usize, seed: u64) -> SkueueCluster {
        SkueueCluster::builder()
            .processes(n)
            .stack()
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn single_process_enqueue_dequeue() {
        let mut cluster = queue_cluster(1, 1);
        let p = ProcessId(0);
        let tickets = [
            cluster.enqueue(p, 10).unwrap(),
            cluster.enqueue(p, 20).unwrap(),
            cluster.dequeue(p).unwrap(),
            cluster.dequeue(p).unwrap(),
            cluster.dequeue(p).unwrap(), // ⊥
        ];
        let outcomes = cluster.run_until_done(&tickets, 500).unwrap();
        assert!(matches!(outcomes[0], OpOutcome::Enqueued { .. }));
        assert_eq!(outcomes[2].value(), Some(10), "FIFO: first dequeue gets 10");
        assert_eq!(outcomes[3].value(), Some(20));
        assert!(outcomes[4].is_empty(), "third dequeue must return ⊥");
        assert_eq!(cluster.history().len(), 5);
        check_queue(cluster.history()).assert_consistent();
    }

    #[test]
    fn small_cluster_fifo_order_across_processes() {
        let mut cluster = queue_cluster(4, 7);
        let puts: Vec<_> = (0..8u64)
            .map(|i| cluster.client(ProcessId(i % 4)).enqueue(100 + i).unwrap())
            .collect();
        cluster.run_until_done(&puts, 500).unwrap();
        let gets: Vec<_> = (0..8u64)
            .map(|i| cluster.client(ProcessId((i + 1) % 4)).dequeue().unwrap())
            .collect();
        let outcomes = cluster.run_until_done(&gets, 500).unwrap();
        assert!(outcomes.iter().all(|o| !o.is_empty()));
        assert_eq!(cluster.history().len(), 16);
        check_queue(cluster.history()).assert_consistent();
    }

    #[test]
    fn queue_interleaved_workload_is_consistent() {
        let mut cluster = queue_cluster(6, 3);
        let mut rng = skueue_sim::SimRng::new(99);
        for step in 0..120u64 {
            let p = ProcessId(rng.gen_range(6));
            let mut client = cluster.client(p);
            if rng.gen_bool(0.6) {
                client.enqueue(step).unwrap();
            } else {
                client.dequeue().unwrap();
            }
            if step % 3 == 0 {
                cluster.run_round();
            }
        }
        cluster.run_until_all_complete(2000).unwrap();
        let history = cluster.history();
        assert_eq!(history.len(), 120);
        check_queue(history).assert_consistent();
    }

    #[test]
    fn stack_lifo_semantics() {
        let mut cluster = stack_cluster(3, 5);
        let p = ProcessId(0);
        let a = cluster.push(p, 1).unwrap();
        let b = cluster.push(p, 2).unwrap();
        cluster.run_until_done(&[a, b], 500).unwrap();
        let pop1 = cluster.pop(ProcessId(1)).unwrap();
        let o1 = cluster.run_until_done(&[pop1], 500).unwrap();
        // The first pop must return the element pushed second (value 2).
        assert_eq!(o1[0].value(), Some(2));
        let pop2 = cluster.pop(ProcessId(2)).unwrap();
        let pop3 = cluster.pop(ProcessId(2)).unwrap(); // ⊥
        let rest = cluster.run_until_done(&[pop2, pop3], 500).unwrap();
        assert_eq!(rest[0].value(), Some(1));
        assert!(rest[1].is_empty());
        check_stack(cluster.history()).assert_consistent();
    }

    #[test]
    fn stack_local_combining_completes_instantly() {
        let mut cluster = stack_cluster(2, 11);
        let p = ProcessId(0);
        // Push+pop issued back-to-back at the same process combine locally.
        let push = cluster.push(p, 7).unwrap();
        let pop = cluster.pop(p).unwrap();
        assert_eq!(cluster.open_requests(), 2);
        cluster.run_round();
        assert_eq!(
            cluster.open_requests(),
            0,
            "locally combined pair must complete immediately"
        );
        assert_eq!(cluster.locally_combined(), 2);
        assert!(cluster.status(push).is_done());
        assert_eq!(
            cluster.outcome(pop).unwrap().value(),
            Some(7),
            "the pop's outcome must carry the locally matched element"
        );
        check_stack(cluster.history()).assert_consistent();
    }

    #[test]
    fn fairness_over_many_enqueues() {
        let mut cluster = queue_cluster(8, 13);
        for i in 0..400u64 {
            cluster.client(ProcessId(i % 8)).enqueue(i).unwrap();
            if i % 10 == 0 {
                cluster.run_round();
            }
        }
        cluster.run_until_all_complete(3000).unwrap();
        let stats = cluster.fairness().unwrap();
        assert_eq!(stats.total, 400);
        // With 24 virtual nodes and 400 elements the imbalance should be
        // bounded (consistent hashing fairness, Lemma 4).
        assert!(
            stats.max_over_mean < 6.0,
            "imbalance {:.2}",
            stats.max_over_mean
        );
        check_queue(cluster.history()).assert_consistent();
    }

    #[test]
    fn anchor_window_tracks_queue_size() {
        let mut cluster = queue_cluster(3, 17);
        for i in 0..10u64 {
            cluster.client(ProcessId(i % 3)).enqueue(i).unwrap();
        }
        cluster.run_until_all_complete(500).unwrap();
        assert_eq!(cluster.anchor_state().unwrap().size(), 10);
        for i in 0..4u64 {
            cluster.client(ProcessId(i % 3)).dequeue().unwrap();
        }
        cluster.run_until_all_complete(500).unwrap();
        assert_eq!(cluster.anchor_state().unwrap().size(), 6);
    }

    #[test]
    fn join_integrates_new_process() {
        let mut cluster = queue_cluster(3, 21);
        let new_pid = cluster.join(None).unwrap();
        assert!(!cluster.process_is_active(new_pid));
        cluster
            .run_until(|c| c.process_is_active(new_pid), 600)
            .unwrap();
        assert!(cluster.process_is_active(new_pid));
        // The new process can issue requests that complete consistently.
        // (Wait for the enqueue before dequeuing: issued concurrently on an
        // empty queue, a dequeue ordered before the enqueue — returning ⊥ —
        // would be sequentially consistent too, and with demand-driven waves
        // the winner is a race.)
        let put = cluster.client(new_pid).enqueue(42).unwrap();
        cluster.run_until_done(&[put], 600).unwrap();
        let got = cluster.client(ProcessId(0)).dequeue().unwrap();
        let outcomes = cluster.run_until_done(&[got], 600).unwrap();
        assert_eq!(outcomes[0].value(), Some(42));
        check_queue(cluster.history()).assert_consistent();
    }

    #[test]
    fn leave_removes_process_and_preserves_data() {
        let mut cluster = queue_cluster(5, 23);
        for i in 0..30u64 {
            cluster.client(ProcessId(i % 5)).enqueue(i).unwrap();
        }
        cluster.run_until_all_complete(800).unwrap();

        // Find a process that does not host the anchor.
        let victim = (0..5u64)
            .map(ProcessId)
            .find(|&p| cluster.leave(p).is_ok())
            .expect("some non-anchor process must be able to leave");
        cluster
            .run_until(|c| c.process_has_left(victim), 1200)
            .unwrap();

        // All 30 elements must still be retrievable in FIFO order.
        let survivors: Vec<ProcessId> = cluster.active_process_ids();
        assert_eq!(survivors.len(), 4);
        let gets: Vec<_> = (0..30u64)
            .map(|i| {
                cluster
                    .client(survivors[(i % 4) as usize])
                    .dequeue()
                    .unwrap()
            })
            .collect();
        let outcomes = cluster.run_until_done(&gets, 2000).unwrap();
        assert!(
            outcomes.iter().all(|o| !o.is_empty()),
            "all elements must be found after the leave"
        );
        check_queue(cluster.history()).assert_consistent();
    }

    #[test]
    fn anchor_process_cannot_leave() {
        let mut cluster = queue_cluster(3, 31);
        cluster.run_rounds(2);
        let anchor_process = cluster
            .nodes()
            .find(|(_, n)| n.is_anchor_node())
            .map(|(_, n)| n.process())
            .unwrap();
        assert_eq!(
            cluster.leave(anchor_process),
            Err(ClusterError::AnchorCannotLeave(anchor_process))
        );
    }

    #[test]
    fn errors_for_unknown_or_inactive_processes() {
        let mut cluster = queue_cluster(2, 1);
        assert!(matches!(
            cluster.enqueue(ProcessId(99), 1),
            Err(ClusterError::UnknownProcess(_))
        ));
        let joining = cluster.join(None).unwrap();
        assert!(matches!(
            cluster.enqueue(joining, 1),
            Err(ClusterError::ProcessNotActive(_))
        ));
    }

    #[test]
    fn wrong_mode_is_a_real_error() {
        let mut queue = queue_cluster(2, 1);
        assert!(matches!(
            queue.push(ProcessId(0), 1),
            Err(ClusterError::WrongMode {
                required: Mode::Stack,
                actual: Mode::Queue
            })
        ));
        assert!(queue.pop(ProcessId(0)).is_err());
        let mut stack = stack_cluster(2, 1);
        assert!(matches!(
            stack.dequeue(ProcessId(0)),
            Err(ClusterError::WrongMode {
                required: Mode::Queue,
                actual: Mode::Stack
            })
        ));
    }

    #[test]
    fn outcome_is_none_while_pending_and_resolves_after() {
        let mut cluster = queue_cluster(2, 9);
        let put = cluster.client(ProcessId(0)).enqueue(5).unwrap();
        assert_eq!(cluster.outcome(put), None);
        assert_eq!(cluster.status(put), OpStatus::Pending);
        cluster.run_until_all_complete(500).unwrap();
        assert!(cluster.status(put).is_done());
        assert!(matches!(
            cluster.outcome(put),
            Some(OpOutcome::Enqueued { .. })
        ));
    }

    #[test]
    fn run_until_done_respects_round_budget() {
        let mut cluster = queue_cluster(4, 3);
        let put = cluster.client(ProcessId(0)).enqueue(1).unwrap();
        // One round is never enough for the full aggregate/assign/serve/DHT
        // pipeline.
        let err = cluster.run_until_done(&[put], 1).unwrap_err();
        assert_eq!(
            err,
            ClusterError::RoundLimitExceeded {
                limit: 1,
                open_requests: 1
            }
        );
        // The same ticket resolves once given enough budget.
        let outcomes = cluster.run_until_done(&[put], 500).unwrap();
        assert_eq!(outcomes.len(), 1);
    }

    #[test]
    fn completion_observers_see_every_event() {
        use std::cell::RefCell;
        use std::rc::Rc;

        type SeenEvents = Rc<RefCell<Vec<(OpKind, Option<u64>)>>>;
        let mut cluster = queue_cluster(3, 8);
        let seen: SeenEvents = Rc::default();
        let sink = Rc::clone(&seen);
        cluster.on_complete(move |event| {
            sink.borrow_mut()
                .push((event.ticket.kind(), event.outcome.value()));
        });
        let put = cluster.client(ProcessId(0)).enqueue(77).unwrap();
        let got = cluster.client(ProcessId(1)).dequeue().unwrap();
        cluster.run_until_done(&[put, got], 500).unwrap();
        let events = seen.borrow();
        assert_eq!(events.len(), 2);
        assert!(events.contains(&(OpKind::Enqueue, None)));
        assert!(events.contains(&(OpKind::Dequeue, Some(77))));
        // The history was built from the same stream.
        assert_eq!(cluster.history().len(), events.len());
    }

    #[test]
    fn foreign_tickets_never_resolve() {
        let mut a = queue_cluster(2, 1);
        let mut b = queue_cluster(2, 1);
        // Identical deterministic RequestIds (p0#0) on both clusters.
        let ticket_a = a.client(ProcessId(0)).enqueue(7).unwrap();
        let ticket_b = b.client(ProcessId(0)).enqueue(8).unwrap();
        assert_eq!(ticket_a.request_id(), ticket_b.request_id());
        a.run_until_all_complete(500).unwrap();
        b.run_until_all_complete(500).unwrap();
        // Each cluster resolves only its own ticket.
        assert!(a.outcome(ticket_a).is_some());
        assert!(b.outcome(ticket_b).is_some());
        assert_eq!(a.outcome(ticket_b), None, "foreign ticket must not resolve");
        assert_eq!(b.outcome(ticket_a), None, "foreign ticket must not resolve");
        assert_eq!(b.status(ticket_a), OpStatus::Foreign);
        assert!(b.status(ticket_a).is_foreign());
        assert_eq!(b.status(ticket_a).outcome(), None);
        // Waiting on a foreign ticket is rejected up front instead of
        // spinning against a ticket that can never complete.
        assert_eq!(
            b.run_until_done(&[ticket_a], 0).unwrap_err(),
            ClusterError::ForeignTicket(ticket_a)
        );
    }

    #[test]
    fn builder_is_the_only_constructor_and_validates() {
        // The deprecated `new`/`queue`/`stack` shims are gone; the builder
        // covers both construction paths and rejects bad configurations.
        let mut cluster = SkueueCluster::builder()
            .processes(2)
            .seed(4)
            .build()
            .unwrap();
        cluster.enqueue(ProcessId(0), 1).unwrap();
        cluster.run_until_all_complete(500).unwrap();
        let stack = SkueueCluster::<u64>::builder()
            .processes(2)
            .stack()
            .seed(4)
            .build()
            .unwrap();
        assert!(stack.config().is_stack());
        assert_eq!(
            SkueueCluster::<u64>::builder().build().unwrap_err(),
            BuildError::NoProcesses
        );
    }

    #[test]
    fn sharded_cluster_partitions_work_and_stays_consistent() {
        let mut cluster = SkueueCluster::builder()
            .processes(24)
            .shards(4)
            .seed(5)
            .build()
            .unwrap();
        assert_eq!(cluster.shards(), 4);
        // Every process's shard matches the deterministic map.
        let map = cluster.shard_map();
        for p in 0..24u64 {
            let pid = ProcessId(p);
            assert_eq!(
                cluster.shard_of_process(pid),
                Some(map.shard_of_process(pid))
            );
        }
        for i in 0..96u64 {
            cluster.client(ProcessId(i % 24)).enqueue(i).unwrap();
        }
        cluster.run_until_all_complete(10_000).unwrap();
        assert_eq!(cluster.queued_elements(), 96);
        for i in 0..48u64 {
            cluster.client(ProcessId(i % 24)).dequeue().unwrap();
        }
        cluster.run_until_all_complete(10_000).unwrap();
        skueue_verify::check_queue_sharded(cluster.history(), &map).assert_consistent();
        // Work actually spread over several anchors.
        let waves = cluster.shard_wave_counts();
        assert_eq!(waves.len(), 4);
        assert!(
            waves.iter().filter(|&&w| w > 0).count() >= 2,
            "expected ≥2 shards to assign waves, got {waves:?}"
        );
        // Elements landed in their enqueuer's shard's position interval.
        for (_, node) in cluster.nodes() {
            for entry in node.store().iter_entries() {
                assert_eq!(
                    map.shard_of_position(entry.position),
                    node.shard(),
                    "stored element crossed a shard's keyspace interval"
                );
            }
        }
    }

    #[test]
    fn middle_fingers_preserve_queue_semantics_under_churn() {
        // The nearest-middle finger changes routes (and therefore schedules)
        // but must never change *semantics*: the sharded verifier has to
        // pass with fingers on, through a join and a leave, and every
        // finger-routed request must still reach its key's responsible node.
        let mut cluster = SkueueCluster::builder()
            .processes(18)
            .shards(2)
            .seed(13)
            .middle_fingers(true)
            .build()
            .unwrap();
        assert!(cluster.config().middle_fingers);
        // Construction populated real fingers (18 processes per deployment
        // guarantee other middles exist in each shard).
        let populated = cluster
            .nodes()
            .filter(|(_, n)| n.view().middle_finger.is_some())
            .count();
        assert!(populated > 0, "expected initial views to carry fingers");
        for i in 0..72u64 {
            cluster.client(ProcessId(i % 18)).enqueue(i).unwrap();
        }
        cluster.run_until_all_complete(10_000).unwrap();
        let joined = cluster.join(None).unwrap();
        cluster
            .run_until(|c| c.process_is_active(joined), 2_000)
            .unwrap();
        // Leave someone other than the joiner; skip pinned anchor hosts.
        let left = (0..18u64)
            .map(ProcessId)
            .find(|&p| cluster.leave(p).is_ok())
            .expect("some process can leave");
        // The sweep dropped every finger aimed at the departing process.
        for (_, node) in cluster.nodes() {
            assert!(
                node.view()
                    .middle_finger
                    .is_none_or(|f| f.vid.process != left),
                "stale finger survived the leave sweep"
            );
        }
        cluster
            .run_until(|c| !c.process_is_active(left), 5_000)
            .unwrap();
        for i in 0..36u64 {
            let p = ProcessId((i * 5) % 18);
            if cluster.process_may_issue(p) {
                cluster.client(p).dequeue().unwrap();
            }
        }
        cluster.run_until_all_complete(10_000).unwrap();
        let map = cluster.shard_map();
        skueue_verify::check_queue_sharded(cluster.history(), &map).assert_consistent();
    }

    #[test]
    fn sharded_join_routes_to_the_joiners_shard() {
        let mut cluster = SkueueCluster::builder()
            .processes(16)
            .shards(4)
            .seed(9)
            .build()
            .unwrap();
        let map = cluster.shard_map();
        let new_pid = cluster.join(None).unwrap();
        assert_eq!(
            cluster.shard_of_process(new_pid),
            Some(map.shard_of_process(new_pid))
        );
        cluster
            .run_until(|c| c.process_is_active(new_pid), 2_000)
            .unwrap();
        let put = cluster.client(new_pid).enqueue(7).unwrap();
        cluster.run_until_done(&[put], 2_000).unwrap();
        let got = cluster.client(new_pid).dequeue().unwrap();
        let outcomes = cluster.run_until_done(&[got], 2_000).unwrap();
        assert_eq!(outcomes[0].value(), Some(7));
        skueue_verify::check_queue_sharded(cluster.history(), &map).assert_consistent();
    }

    #[test]
    fn single_shard_run_is_bit_identical_to_unsharded() {
        // `.shards(1)` must reproduce the default configuration's history
        // exactly — same order keys, same rounds, same bytes.
        let run = |sharded: bool| {
            let mut builder = SkueueCluster::builder().processes(6).seed(3);
            if sharded {
                builder = builder.shards(1);
            }
            let mut cluster = builder.build().unwrap();
            for i in 0..30u64 {
                let p = ProcessId(i % 6);
                if i % 3 == 0 {
                    cluster.client(p).dequeue().unwrap();
                } else {
                    cluster.client(p).enqueue(i).unwrap();
                }
                if i % 5 == 0 {
                    cluster.run_round();
                }
            }
            cluster.run_until_all_complete(5_000).unwrap();
            cluster.into_history().into_records()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn run_until_done_with_mixed_resolved_and_pending_tickets() {
        // Exercises the pending-set bookkeeping: some tickets are already
        // done when the wait starts, duplicates are fine, and the wait only
        // tracks what is actually open.
        let mut cluster = queue_cluster(3, 19);
        let early = cluster.client(ProcessId(0)).enqueue(1).unwrap();
        cluster.run_until_all_complete(500).unwrap();
        let late_a = cluster.client(ProcessId(1)).enqueue(2).unwrap();
        let late_b = cluster.client(ProcessId(2)).dequeue().unwrap();
        let outcomes = cluster
            .run_until_done(&[early, late_a, early, late_b], 500)
            .unwrap();
        assert_eq!(outcomes.len(), 4);
        assert!(matches!(outcomes[0], OpOutcome::Enqueued { .. }));
        assert_eq!(outcomes[0], outcomes[2]);
        assert!(!outcomes[3].is_empty());
        check_queue(cluster.history()).assert_consistent();
    }
}
