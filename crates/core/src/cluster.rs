//! The cluster driver: the public API a user of the library works with.
//!
//! [`SkueueCluster`] owns a [`Simulation`] of [`SkueueNode`]s, one per
//! virtual node (three per process), plus the bookkeeping needed to inject
//! requests, drive rounds, and collect results:
//!
//! * [`SkueueCluster::enqueue`] / [`SkueueCluster::dequeue`] (or
//!   [`SkueueCluster::push`] / [`SkueueCluster::pop`] in stack mode)
//!   generate a request at a process, exactly like the workload of the
//!   paper's evaluation ("we generate 10 queue requests and assign them to
//!   random nodes"),
//! * [`SkueueCluster::join`] / [`SkueueCluster::leave`] add or remove
//!   processes through the Section IV protocol,
//! * [`SkueueCluster::run_round`] advances the synchronous simulation by one
//!   round and collects completed operations into the execution
//!   [`History`], which can be fed to `skueue-verify`,
//! * accessor methods expose the measurements the paper reports (per-request
//!   round counts, batch sizes, per-node element counts, …).

use crate::batch::BatchOp;
use crate::config::{Mode, ProtocolConfig};
use crate::messages::SkueueMsg;
use crate::node::SkueueNode;
use skueue_dht::load_stats;
use skueue_dht::LoadStats;
use skueue_overlay::{recommended_bit_budget, LabelHasher, LocalView, NeighborInfo, Topology, VKind, VirtualId};
use skueue_sim::ids::{NodeId, ProcessId, RequestId};
use skueue_sim::metrics::Histogram;
use skueue_sim::{SimConfig, SimError, Simulation};
use skueue_verify::History;
use std::collections::HashMap;

/// Errors surfaced by the cluster driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// The requested process does not exist or has left.
    UnknownProcess(ProcessId),
    /// The process is not an integrated member (still joining or leaving).
    ProcessNotActive(ProcessId),
    /// The process currently hosting the anchor cannot leave (documented
    /// restriction of this reproduction).
    AnchorCannotLeave(ProcessId),
    /// The simulation reported an error.
    Sim(SimError),
    /// A run exceeded its round budget before the condition became true.
    RoundLimitExceeded {
        /// The exceeded budget.
        limit: u64,
        /// Requests still open when the budget ran out.
        open_requests: usize,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::UnknownProcess(p) => write!(f, "unknown process {p}"),
            ClusterError::ProcessNotActive(p) => write!(f, "process {p} is not active"),
            ClusterError::AnchorCannotLeave(p) => {
                write!(f, "process {p} hosts the anchor and cannot leave")
            }
            ClusterError::Sim(e) => write!(f, "simulation error: {e}"),
            ClusterError::RoundLimitExceeded { limit, open_requests } => write!(
                f,
                "round limit of {limit} exceeded with {open_requests} open requests"
            ),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<SimError> for ClusterError {
    fn from(e: SimError) -> Self {
        ClusterError::Sim(e)
    }
}

/// Lifecycle state of a process as tracked by the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcessState {
    Active,
    Joining,
    Leaving,
    Left,
}

#[derive(Debug, Clone)]
struct ProcessHandle {
    id: ProcessId,
    /// Node ids of the left/middle/right virtual nodes.
    nodes: [NodeId; 3],
    state: ProcessState,
    next_seq: u64,
}

/// A running Skueue deployment (queue or stack) on top of the simulation
/// substrate.
pub struct SkueueCluster {
    sim: Simulation<SkueueNode>,
    cfg: ProtocolConfig,
    hasher: LabelHasher,
    processes: Vec<ProcessHandle>,
    index_of: HashMap<ProcessId, usize>,
    history: History,
    issued: u64,
    next_process_id: u64,
}

impl SkueueCluster {
    /// Builds a cluster of `n` processes with the given protocol and
    /// simulation configuration.
    pub fn new(n: usize, mut cfg: ProtocolConfig, sim_cfg: SimConfig) -> Result<Self, ClusterError> {
        assert!(n >= 1, "a Skueue cluster needs at least one process");
        if cfg.bit_budget == 0 {
            cfg.bit_budget = recommended_bit_budget(n);
        }
        let hasher = cfg.hasher();
        let process_ids: Vec<ProcessId> = (0..n as u64).map(ProcessId).collect();
        let topology = Topology::build(&process_ids, hasher)
            .expect("non-empty, duplicate-free process set");

        let mut sim = Simulation::new(sim_cfg)?;
        // Node ids are assigned densely: process i gets nodes 3i, 3i+1, 3i+2
        // in VKind order (Left, Middle, Right).
        let node_of = |vid: VirtualId| -> NodeId {
            NodeId(vid.process.raw() * 3 + vid.kind.index() as u64)
        };
        let anchor_vid = topology.anchor();
        let mut processes = Vec::with_capacity(n);
        let mut index_of = HashMap::with_capacity(n);
        for (i, &pid) in process_ids.iter().enumerate() {
            let mut nodes = [NodeId(0); 3];
            for kind in VKind::ALL {
                let vid = VirtualId::new(pid, kind);
                let view = topology
                    .local_view(vid, &node_of)
                    .expect("vid from own topology");
                let node = SkueueNode::new(cfg, view, vid == anchor_vid);
                let assigned = sim.add_node(node);
                debug_assert_eq!(assigned, node_of(vid));
                nodes[kind.index()] = assigned;
            }
            processes.push(ProcessHandle { id: pid, nodes, state: ProcessState::Active, next_seq: 0 });
            index_of.insert(pid, i);
        }

        Ok(SkueueCluster {
            sim,
            cfg,
            hasher,
            processes,
            index_of,
            history: History::new(),
            issued: 0,
            next_process_id: n as u64,
        })
    }

    /// Convenience constructor: a queue over `n` processes on the synchronous
    /// scheduler.
    pub fn queue(n: usize, seed: u64) -> Self {
        SkueueCluster::new(n, ProtocolConfig::queue(), SimConfig::synchronous(seed))
            .expect("synchronous config is always valid")
    }

    /// Convenience constructor: a stack over `n` processes on the synchronous
    /// scheduler.
    pub fn stack(n: usize, seed: u64) -> Self {
        SkueueCluster::new(n, ProtocolConfig::stack(), SimConfig::synchronous(seed))
            .expect("synchronous config is always valid")
    }

    // ------------------------------------------------------------------
    // Introspection.
    // ------------------------------------------------------------------

    /// The protocol configuration.
    pub fn config(&self) -> &ProtocolConfig {
        &self.cfg
    }

    /// The current round.
    pub fn round(&self) -> u64 {
        self.sim.round()
    }

    /// Number of processes that are integrated members.
    pub fn active_processes(&self) -> usize {
        self.processes
            .iter()
            .filter(|p| p.state == ProcessState::Active)
            .count()
    }

    /// Ids of all currently active processes.
    pub fn active_process_ids(&self) -> Vec<ProcessId> {
        self.processes
            .iter()
            .filter(|p| p.state == ProcessState::Active)
            .map(|p| p.id)
            .collect()
    }

    /// Total number of requests issued so far.
    pub fn requests_issued(&self) -> u64 {
        self.issued
    }

    /// Number of requests that have completed (records in the history).
    pub fn requests_completed(&self) -> u64 {
        self.history.len() as u64
    }

    /// Number of requests still in flight.
    pub fn open_requests(&self) -> u64 {
        self.issued - self.requests_completed()
    }

    /// The execution history collected so far.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// Consumes the cluster and returns the history.
    pub fn into_history(self) -> History {
        self.history
    }

    /// Substrate metrics (messages, delays, …).
    pub fn sim_metrics(&self) -> &skueue_sim::SimMetrics {
        self.sim.metrics()
    }

    /// Current anchor window/counter state (from whichever node holds it).
    pub fn anchor_state(&self) -> Option<crate::anchor::AnchorState> {
        self.sim
            .iter()
            .find_map(|(_, node)| node.anchor_state().copied())
    }

    /// Per-node stored-element counts (fairness accounting, Corollary 19).
    pub fn stored_elements_per_node(&self) -> Vec<u64> {
        self.sim
            .iter()
            .filter(|(_, node)| node.is_integrated())
            .map(|(_, node)| node.stored_elements() as u64)
            .collect()
    }

    /// Load statistics over the per-node element counts.
    pub fn fairness(&self) -> Option<LoadStats> {
        let counts = self.stored_elements_per_node();
        load_stats(&counts)
    }

    /// Histogram of the sizes of every batch sent in the system
    /// (Theorem 18 / Theorem 20).
    pub fn batch_size_histogram(&self) -> Histogram {
        let mut h = Histogram::new();
        for (_, node) in self.sim.iter() {
            h.merge(&node.stats().batch_sizes);
        }
        h
    }

    /// Histogram of DHT routing hop counts (Lemma 3).
    pub fn dht_hop_histogram(&self) -> Histogram {
        let mut h = Histogram::new();
        for (_, node) in self.sim.iter() {
            h.merge(&node.stats().dht_hops);
        }
        h
    }

    /// Total number of requests resolved by the stack's local combining.
    pub fn locally_combined(&self) -> u64 {
        self.sim.iter().map(|(_, n)| n.stats().locally_combined).sum()
    }

    // ------------------------------------------------------------------
    // Request injection.
    // ------------------------------------------------------------------

    fn issue(&mut self, process: ProcessId, kind: BatchOp, value: u64) -> Result<RequestId, ClusterError> {
        let idx = *self
            .index_of
            .get(&process)
            .ok_or(ClusterError::UnknownProcess(process))?;
        if self.processes[idx].state != ProcessState::Active {
            return Err(ClusterError::ProcessNotActive(process));
        }
        let seq = self.processes[idx].next_seq;
        self.processes[idx].next_seq += 1;
        let id = RequestId::new(process, seq);
        // Requests are generated at the process's middle virtual node.
        let node_id = self.processes[idx].nodes[VKind::Middle.index()];
        let round = self.sim.round();
        let node = self.sim.node_mut(node_id).expect("node registered at build time");
        node.generate_op(id, kind, value, round);
        self.issued += 1;
        Ok(id)
    }

    /// Issues an `ENQUEUE(value)` at `process`.
    pub fn enqueue(&mut self, process: ProcessId, value: u64) -> Result<RequestId, ClusterError> {
        debug_assert_eq!(self.cfg.mode, Mode::Queue, "enqueue on a stack cluster");
        self.issue(process, BatchOp::Enqueue, value)
    }

    /// Issues a `DEQUEUE()` at `process`.
    pub fn dequeue(&mut self, process: ProcessId) -> Result<RequestId, ClusterError> {
        debug_assert_eq!(self.cfg.mode, Mode::Queue, "dequeue on a stack cluster");
        self.issue(process, BatchOp::Dequeue, 0)
    }

    /// Issues a `PUSH(value)` at `process` (stack mode).
    pub fn push(&mut self, process: ProcessId, value: u64) -> Result<RequestId, ClusterError> {
        debug_assert_eq!(self.cfg.mode, Mode::Stack, "push on a queue cluster");
        self.issue(process, BatchOp::Enqueue, value)
    }

    /// Issues a `POP()` at `process` (stack mode).
    pub fn pop(&mut self, process: ProcessId) -> Result<RequestId, ClusterError> {
        debug_assert_eq!(self.cfg.mode, Mode::Stack, "pop on a queue cluster");
        self.issue(process, BatchOp::Dequeue, 0)
    }

    /// Issues an operation without caring about queue/stack naming (used by
    /// the workload generators).
    pub fn issue_op(
        &mut self,
        process: ProcessId,
        is_insert: bool,
        value: u64,
    ) -> Result<RequestId, ClusterError> {
        self.issue(
            process,
            if is_insert { BatchOp::Enqueue } else { BatchOp::Dequeue },
            value,
        )
    }

    // ------------------------------------------------------------------
    // Join / leave.
    // ------------------------------------------------------------------

    /// Starts the `JOIN()` of a brand-new process via the given bootstrap
    /// process (defaults to process 0's middle node when `None`).  Returns
    /// the new process id.  The process becomes usable once its three
    /// virtual nodes have been integrated (see [`Self::process_is_active`]).
    pub fn join(&mut self, bootstrap: Option<ProcessId>) -> Result<ProcessId, ClusterError> {
        let bootstrap_pid = match bootstrap {
            Some(p) => p,
            None => self
                .active_process_ids()
                .first()
                .copied()
                .ok_or(ClusterError::UnknownProcess(ProcessId(0)))?,
        };
        let bootstrap_idx = *self
            .index_of
            .get(&bootstrap_pid)
            .ok_or(ClusterError::UnknownProcess(bootstrap_pid))?;
        if self.processes[bootstrap_idx].state != ProcessState::Active {
            return Err(ClusterError::ProcessNotActive(bootstrap_pid));
        }
        let bootstrap_node = self.processes[bootstrap_idx].nodes[VKind::Middle.index()];

        let pid = ProcessId(self.next_process_id);
        self.next_process_id += 1;
        let middle_label = self.hasher.process_label(pid);
        let mut nodes = [NodeId(0); 3];
        // First create the three nodes so we know their ids, then fill in the
        // sibling views.
        let mut created: Vec<(VKind, NodeId)> = Vec::with_capacity(3);
        for kind in VKind::ALL {
            let label = kind.label_from_middle(middle_label);
            let vid = VirtualId::new(pid, kind);
            let me = NeighborInfo::new(NodeId(0), vid, label); // placeholder id, fixed below
            let view = LocalView { me, pred: me, succ: me, siblings: [me, me, me] };
            let node = SkueueNode::new_joining(self.cfg, view);
            let id = self.sim.add_node(node);
            created.push((kind, id));
            nodes[kind.index()] = id;
        }
        // Fix up identities and sibling pointers now that all ids are known.
        let siblings: [NeighborInfo; 3] = [
            NeighborInfo::new(nodes[0], VirtualId::left(pid), VKind::Left.label_from_middle(middle_label)),
            NeighborInfo::new(nodes[1], VirtualId::middle(pid), middle_label),
            NeighborInfo::new(nodes[2], VirtualId::right(pid), VKind::Right.label_from_middle(middle_label)),
        ];
        for (kind, id) in created {
            let me = siblings[kind.index()];
            let node = self.sim.node_mut(id).expect("just created");
            node.view = LocalView { me, pred: me, succ: me, siblings };
            node.set_bootstrap(bootstrap_node);
        }
        self.processes.push(ProcessHandle {
            id: pid,
            nodes,
            state: ProcessState::Joining,
            next_seq: 0,
        });
        self.index_of.insert(pid, self.processes.len() - 1);
        Ok(pid)
    }

    /// Starts the `LEAVE()` of a process.  The process stops generating
    /// requests immediately; its virtual nodes leave once their outstanding
    /// work has drained and the next update phase has run.
    pub fn leave(&mut self, process: ProcessId) -> Result<(), ClusterError> {
        let idx = *self
            .index_of
            .get(&process)
            .ok_or(ClusterError::UnknownProcess(process))?;
        if self.processes[idx].state != ProcessState::Active {
            return Err(ClusterError::ProcessNotActive(process));
        }
        // The anchor's host process is pinned (documented restriction).
        let nodes = self.processes[idx].nodes;
        for node_id in nodes {
            if self
                .sim
                .node(node_id)
                .map(|n| n.is_anchor_node())
                .unwrap_or(false)
            {
                return Err(ClusterError::AnchorCannotLeave(process));
            }
        }
        self.processes[idx].state = ProcessState::Leaving;
        for node_id in nodes {
            if let Some(node) = self.sim.node_mut(node_id) {
                node.request_leave();
            }
        }
        Ok(())
    }

    /// True once all three virtual nodes of a process are integrated members.
    pub fn process_is_active(&self, process: ProcessId) -> bool {
        match self.index_of.get(&process) {
            Some(&idx) => self.processes[idx]
                .nodes
                .iter()
                .all(|&n| self.sim.node(n).map(|node| node.is_integrated()).unwrap_or(false)),
            None => false,
        }
    }

    /// True once all three virtual nodes of a leaving process have drained.
    pub fn process_has_left(&self, process: ProcessId) -> bool {
        match self.index_of.get(&process) {
            Some(&idx) => self.processes[idx]
                .nodes
                .iter()
                .all(|&n| self.sim.node(n).map(|node| node.has_left()).unwrap_or(true)),
            None => false,
        }
    }

    // ------------------------------------------------------------------
    // Driving the simulation.
    // ------------------------------------------------------------------

    /// Runs one synchronous round and collects completed requests.
    pub fn run_round(&mut self) {
        self.sim.run_round();
        self.collect_completions();
        self.refresh_process_states();
    }

    /// Runs `rounds` rounds.
    pub fn run_rounds(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.run_round();
        }
    }

    /// Runs until every issued request has completed, or the round budget is
    /// exhausted.
    pub fn run_until_all_complete(&mut self, max_rounds: u64) -> Result<u64, ClusterError> {
        let start = self.sim.round();
        while self.open_requests() > 0 {
            if max_rounds > 0 && self.sim.round() - start >= max_rounds {
                return Err(ClusterError::RoundLimitExceeded {
                    limit: max_rounds,
                    open_requests: self.open_requests() as usize,
                });
            }
            self.run_round();
        }
        Ok(self.sim.round() - start)
    }

    /// Runs until the given predicate over the cluster becomes true.
    pub fn run_until<F>(&mut self, mut pred: F, max_rounds: u64) -> Result<u64, ClusterError>
    where
        F: FnMut(&SkueueCluster) -> bool,
    {
        let start = self.sim.round();
        while !pred(self) {
            if max_rounds > 0 && self.sim.round() - start >= max_rounds {
                return Err(ClusterError::RoundLimitExceeded {
                    limit: max_rounds,
                    open_requests: self.open_requests() as usize,
                });
            }
            self.run_round();
        }
        Ok(self.sim.round() - start)
    }

    fn collect_completions(&mut self) {
        // Drain completion records from every node into the history.
        let mut drained = Vec::new();
        for (_, node) in self.sim.iter_mut() {
            drained.append(&mut node.drain_completed());
        }
        for record in drained {
            self.history.push(record);
        }
    }

    fn refresh_process_states(&mut self) {
        for p in &mut self.processes {
            match p.state {
                ProcessState::Joining => {
                    let all_active = p
                        .nodes
                        .iter()
                        .all(|&n| self.sim.node(n).map(|node| node.is_integrated()).unwrap_or(false));
                    if all_active {
                        p.state = ProcessState::Active;
                    }
                }
                ProcessState::Leaving => {
                    let all_left = p
                        .nodes
                        .iter()
                        .all(|&n| self.sim.node(n).map(|node| node.has_left()).unwrap_or(true));
                    if all_left {
                        p.state = ProcessState::Left;
                        for &n in &p.nodes {
                            let _ = self.sim.deactivate(n);
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// Direct access to a node (tests and diagnostics).
    pub fn node(&self, id: NodeId) -> Option<&SkueueNode> {
        self.sim.node(id)
    }

    /// Iterates over all nodes (tests and diagnostics).
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &SkueueNode)> {
        self.sim.iter()
    }

    /// The message kind used by the cluster (exposed for type annotations in
    /// downstream test helpers).
    pub fn message_type_hint() -> std::marker::PhantomData<SkueueMsg> {
        std::marker::PhantomData
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skueue_verify::{check_queue, check_stack, OpKind};

    #[test]
    fn single_process_enqueue_dequeue() {
        let mut cluster = SkueueCluster::queue(1, 1);
        let p = ProcessId(0);
        cluster.enqueue(p, 10).unwrap();
        cluster.enqueue(p, 20).unwrap();
        cluster.dequeue(p).unwrap();
        cluster.dequeue(p).unwrap();
        cluster.dequeue(p).unwrap(); // ⊥
        let rounds = cluster.run_until_all_complete(500).unwrap();
        assert!(rounds > 0);
        let history = cluster.history();
        assert_eq!(history.len(), 5);
        assert_eq!(history.count_empty(), 1);
        check_queue(history).assert_consistent();
    }

    #[test]
    fn small_cluster_fifo_order_across_processes() {
        let mut cluster = SkueueCluster::queue(4, 7);
        for i in 0..8u64 {
            cluster.enqueue(ProcessId(i % 4), 100 + i).unwrap();
        }
        cluster.run_until_all_complete(500).unwrap();
        for i in 0..8u64 {
            cluster.dequeue(ProcessId((i + 1) % 4)).unwrap();
        }
        cluster.run_until_all_complete(500).unwrap();
        let history = cluster.history();
        assert_eq!(history.len(), 16);
        assert_eq!(history.count_empty(), 0);
        check_queue(history).assert_consistent();
    }

    #[test]
    fn queue_interleaved_workload_is_consistent() {
        let mut cluster = SkueueCluster::queue(6, 3);
        let mut rng = skueue_sim::SimRng::new(99);
        for step in 0..120u64 {
            let p = ProcessId(rng.gen_range(6));
            if rng.gen_bool(0.6) {
                cluster.enqueue(p, step).unwrap();
            } else {
                cluster.dequeue(p).unwrap();
            }
            if step % 3 == 0 {
                cluster.run_round();
            }
        }
        cluster.run_until_all_complete(2000).unwrap();
        let history = cluster.history();
        assert_eq!(history.len(), 120);
        check_queue(history).assert_consistent();
    }

    #[test]
    fn stack_lifo_semantics() {
        let mut cluster = SkueueCluster::stack(3, 5);
        let p = ProcessId(0);
        cluster.push(p, 1).unwrap();
        cluster.push(p, 2).unwrap();
        cluster.run_until_all_complete(500).unwrap();
        cluster.pop(ProcessId(1)).unwrap();
        cluster.run_until_all_complete(500).unwrap();
        cluster.pop(ProcessId(2)).unwrap();
        cluster.pop(ProcessId(2)).unwrap(); // ⊥
        cluster.run_until_all_complete(500).unwrap();
        let history = cluster.history();
        assert_eq!(history.len(), 5);
        check_stack(history).assert_consistent();
        // The first pop must return the element pushed second (value 2).
        let pops: Vec<_> = history
            .records()
            .iter()
            .filter(|r| r.kind == OpKind::Dequeue)
            .collect();
        assert_eq!(pops.len(), 3);
    }

    #[test]
    fn stack_local_combining_completes_instantly() {
        let mut cluster = SkueueCluster::stack(2, 11);
        let p = ProcessId(0);
        // Push+pop issued back-to-back at the same process combine locally.
        cluster.push(p, 7).unwrap();
        cluster.pop(p).unwrap();
        assert_eq!(cluster.open_requests(), 2);
        cluster.run_round();
        assert_eq!(cluster.open_requests(), 0, "locally combined pair must complete immediately");
        assert_eq!(cluster.locally_combined(), 2);
        check_stack(cluster.history()).assert_consistent();
    }

    #[test]
    fn fairness_over_many_enqueues() {
        let mut cluster = SkueueCluster::queue(8, 13);
        for i in 0..400u64 {
            cluster.enqueue(ProcessId(i % 8), i).unwrap();
            if i % 10 == 0 {
                cluster.run_round();
            }
        }
        cluster.run_until_all_complete(3000).unwrap();
        let stats = cluster.fairness().unwrap();
        assert_eq!(stats.total, 400);
        // With 24 virtual nodes and 400 elements the imbalance should be
        // bounded (consistent hashing fairness, Lemma 4).
        assert!(stats.max_over_mean < 6.0, "imbalance {:.2}", stats.max_over_mean);
        check_queue(cluster.history()).assert_consistent();
    }

    #[test]
    fn anchor_window_tracks_queue_size() {
        let mut cluster = SkueueCluster::queue(3, 17);
        for i in 0..10u64 {
            cluster.enqueue(ProcessId(i % 3), i).unwrap();
        }
        cluster.run_until_all_complete(500).unwrap();
        assert_eq!(cluster.anchor_state().unwrap().size(), 10);
        for i in 0..4u64 {
            cluster.dequeue(ProcessId(i % 3)).unwrap();
        }
        cluster.run_until_all_complete(500).unwrap();
        assert_eq!(cluster.anchor_state().unwrap().size(), 6);
    }

    #[test]
    fn join_integrates_new_process() {
        let mut cluster = SkueueCluster::queue(3, 21);
        let new_pid = cluster.join(None).unwrap();
        assert!(!cluster.process_is_active(new_pid));
        cluster
            .run_until(|c| c.process_is_active(new_pid), 600)
            .unwrap();
        assert!(cluster.process_is_active(new_pid));
        // The new process can issue requests that complete consistently.
        cluster.enqueue(new_pid, 42).unwrap();
        cluster.dequeue(ProcessId(0)).unwrap();
        cluster.run_until_all_complete(600).unwrap();
        check_queue(cluster.history()).assert_consistent();
    }

    #[test]
    fn leave_removes_process_and_preserves_data() {
        let mut cluster = SkueueCluster::queue(5, 23);
        for i in 0..30u64 {
            cluster.enqueue(ProcessId(i % 5), i).unwrap();
        }
        cluster.run_until_all_complete(800).unwrap();

        // Find a process that does not host the anchor.
        let victim = (0..5u64)
            .map(ProcessId)
            .find(|&p| cluster.leave(p).is_ok())
            .expect("some non-anchor process must be able to leave");
        cluster
            .run_until(|c| c.process_has_left(victim), 1200)
            .unwrap();

        // All 30 elements must still be retrievable in FIFO order.
        let survivors: Vec<ProcessId> = cluster.active_process_ids();
        assert_eq!(survivors.len(), 4);
        for i in 0..30u64 {
            cluster.dequeue(survivors[(i % 4) as usize]).unwrap();
        }
        cluster.run_until_all_complete(2000).unwrap();
        let history = cluster.history();
        assert_eq!(history.count_empty(), 0, "all elements must be found after the leave");
        check_queue(history).assert_consistent();
    }

    #[test]
    fn anchor_process_cannot_leave() {
        let mut cluster = SkueueCluster::queue(3, 31);
        cluster.run_rounds(2);
        let anchor_process = cluster
            .nodes()
            .find(|(_, n)| n.is_anchor_node())
            .map(|(_, n)| n.process())
            .unwrap();
        assert_eq!(
            cluster.leave(anchor_process),
            Err(ClusterError::AnchorCannotLeave(anchor_process))
        );
    }

    #[test]
    fn errors_for_unknown_or_inactive_processes() {
        let mut cluster = SkueueCluster::queue(2, 1);
        assert!(matches!(
            cluster.enqueue(ProcessId(99), 1),
            Err(ClusterError::UnknownProcess(_))
        ));
        let joining = cluster.join(None).unwrap();
        assert!(matches!(
            cluster.enqueue(joining, 1),
            Err(ClusterError::ProcessNotActive(_))
        ));
    }
}
