//! Interval decomposition (Stage 3).
//!
//! When a node receives the [`RunAssignment`]s for the combined batch it sent
//! up the aggregation tree, it splits every run among the sub-batches that
//! were combined into it — in exactly the order in which they were combined —
//! and forwards the sub-assignments to the corresponding children (its own
//! requests are resolved locally).  Applying this recursively assigns a
//! position (or `⊥`) and an order value to every single request.

use crate::anchor::RunAssignment;
use crate::batch::Batch;

impl RunAssignment {
    /// Splits off the assignment for the first `count` operations of this
    /// run, leaving `self` as the assignment for the remaining operations.
    ///
    /// Enqueue runs always have enough positions; dequeue runs may run out,
    /// in which case the split-off part receives only the positions that are
    /// left (the rest of its operations will return `⊥`).
    pub fn split_front(&mut self, count: u64) -> RunAssignment {
        let take = count.min(self.count);
        let mut sub = *self;
        sub.count = take;

        let available = self.available_positions();
        let positions_taken = take.min(available);

        if self.descending {
            // Stack pops: hand out the highest positions first.
            if positions_taken == 0 {
                // Empty sub-interval, represented with lo > hi above the
                // remaining interval.
                sub.pos_lo = self.pos_hi + 1;
                sub.pos_hi = self.pos_hi;
            } else {
                sub.pos_hi = self.pos_hi;
                sub.pos_lo = self.pos_hi - positions_taken + 1;
                self.pos_hi -= positions_taken;
            }
        } else {
            if positions_taken == 0 {
                // Normalise an empty interval as (lo, lo-1); pos_lo ≥ 1 always
                // holds because position 0 is never assigned.
                sub.pos_lo = self.pos_lo;
                sub.pos_hi = self.pos_lo - 1;
            } else {
                sub.pos_lo = self.pos_lo;
                sub.pos_hi = self.pos_lo + positions_taken - 1;
                self.pos_lo += positions_taken;
            }
        }

        // Order values are consumed front-to-back in all cases.
        sub.value_base = self.value_base;
        self.value_base += take;
        self.count -= take;

        // Tickets: pushes consume ticket numbers front-to-back; pops share a
        // single upper bound, so nothing changes.
        if !self.descending && self.ticket_base > 0 && sub.kind == crate::batch::BatchOp::Enqueue {
            sub.ticket_base = self.ticket_base;
            self.ticket_base += take;
        }

        sub
    }
}

/// Decomposes the run assignments of a combined batch among its sub-batches,
/// in combination order.
///
/// `assignments` must have one entry per run of the combined batch;
/// `sub_batches` are the batches that were combined (the combined batch's
/// run `i` equals the sum of the sub-batches' runs `i`).  Returns one vector
/// of run assignments per sub-batch, padded with zero-count runs so indices
/// line up with the sub-batch's own runs.
pub fn decompose(assignments: &[RunAssignment], sub_batches: &[&Batch]) -> Vec<Vec<RunAssignment>> {
    let mut cursors: Vec<RunAssignment> = assignments.to_vec();
    let mut result: Vec<Vec<RunAssignment>> = vec![Vec::new(); sub_batches.len()];
    for (run_idx, cursor) in cursors.iter_mut().enumerate() {
        for (sub_idx, sub) in sub_batches.iter().enumerate() {
            let count = sub.runs().get(run_idx).copied().unwrap_or(0);
            if run_idx < sub.num_runs() {
                let piece = cursor.split_front(count);
                result[sub_idx].push(piece);
            }
        }
        debug_assert_eq!(
            cursor.count, 0,
            "sub-batches must account for every operation of run {run_idx}"
        );
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anchor::AnchorState;
    use crate::batch::{Batch, BatchOp};
    use crate::config::Mode;
    use proptest::prelude::*;

    fn queue_batch(runs: &[u64]) -> Batch {
        let mut b = Batch::empty();
        for (i, &count) in runs.iter().enumerate() {
            for _ in 0..count {
                b.push_op(if i % 2 == 0 {
                    BatchOp::Enqueue
                } else {
                    BatchOp::Dequeue
                });
            }
        }
        b
    }

    #[test]
    fn split_front_partitions_enqueue_interval() {
        let mut a = AnchorState::new();
        let mut run = a.assign(&queue_batch(&[10]), Mode::Queue).remove(0);
        let first = run.split_front(4);
        let second = run.split_front(6);
        assert_eq!(first.pos_lo, 1);
        assert_eq!(first.pos_hi, 4);
        assert_eq!(second.pos_lo, 5);
        assert_eq!(second.pos_hi, 10);
        assert_eq!(first.value_base, 1);
        assert_eq!(second.value_base, 5);
        assert_eq!(run.count, 0);
    }

    #[test]
    fn split_front_handles_dequeue_shortfall() {
        let mut a = AnchorState::new();
        a.assign(&queue_batch(&[3]), Mode::Queue);
        // 5 dequeues but only 3 elements: positions 1..=3.
        let mut run = a.assign(&queue_batch(&[0, 5]), Mode::Queue).remove(1);
        let first = run.split_front(2);
        let second = run.split_front(3);
        assert_eq!(first.pos_lo, 1);
        assert_eq!(first.pos_hi, 2);
        assert_eq!(first.available_positions(), 2);
        // Second sub-run gets the single remaining position; its other two
        // operations will return ⊥.
        assert_eq!(second.pos_lo, 3);
        assert_eq!(second.pos_hi, 3);
        assert_eq!(second.available_positions(), 1);
        assert_eq!(second.count, 3);
    }

    #[test]
    fn split_front_empty_interval_stays_empty() {
        let mut a = AnchorState::new();
        let mut run = a.assign(&queue_batch(&[0, 4]), Mode::Queue).remove(1);
        assert!(run.is_interval_empty());
        let first = run.split_front(2);
        let second = run.split_front(2);
        assert!(first.is_interval_empty());
        assert!(second.is_interval_empty());
        assert_eq!(first.count, 2);
        assert_eq!(second.count, 2);
        // Order values still advance so every ⊥ gets a unique order.
        assert_eq!(second.value_base, first.value_base + 2);
    }

    #[test]
    fn split_front_descending_takes_top_first() {
        let mut a = AnchorState::new();
        let mut sb = Batch::empty_stack();
        sb.push_stack_residual(0, 6);
        a.assign(&sb, Mode::Stack);
        let mut pops = Batch::empty_stack();
        pops.push_stack_residual(4, 0);
        let mut run = a.assign(&pops, Mode::Stack).remove(0);
        // Positions 3..=6 available, taken from the top.
        let first = run.split_front(2);
        let second = run.split_front(2);
        assert_eq!(first.pos_hi, 6);
        assert_eq!(first.pos_lo, 5);
        assert_eq!(second.pos_hi, 4);
        assert_eq!(second.pos_lo, 3);
        assert!(first.descending && second.descending);
    }

    #[test]
    fn split_front_descending_shortfall() {
        let mut a = AnchorState::new();
        let mut sb = Batch::empty_stack();
        sb.push_stack_residual(0, 2);
        a.assign(&sb, Mode::Stack);
        let mut pops = Batch::empty_stack();
        pops.push_stack_residual(5, 0);
        let mut run = a.assign(&pops, Mode::Stack).remove(0);
        assert_eq!(run.available_positions(), 2);
        let first = run.split_front(3);
        let second = run.split_front(2);
        // The first three pops get the two available positions (2 then 1 left
        // for them), the remaining two pops get nothing.
        assert_eq!(first.available_positions(), 2);
        assert_eq!(second.available_positions(), 0);
    }

    #[test]
    fn split_front_stack_push_tickets_are_partitioned() {
        let mut a = AnchorState::new();
        let mut sb = Batch::empty_stack();
        sb.push_stack_residual(0, 7);
        let mut run = a.assign(&sb, Mode::Stack).remove(1);
        let first = run.split_front(3);
        let second = run.split_front(4);
        assert_eq!(first.ticket_base, 1);
        assert_eq!(second.ticket_base, 4);
        assert_eq!(first.pos_lo, 1);
        assert_eq!(second.pos_lo, 4);
    }

    #[test]
    fn decompose_splits_per_sub_batch() {
        // Combined batch from three sub-batches:
        //   sub A = (2, 1), sub B = (1), sub C = (0, 2)  →  combined (3, 3)
        let a = queue_batch(&[2, 1]);
        let b = queue_batch(&[1]);
        let c = queue_batch(&[0, 2]);
        let mut combined = a.clone();
        combined.combine(&b);
        combined.combine(&c);
        assert_eq!(combined.runs(), &[3, 3]);

        let mut anchor = AnchorState::new();
        anchor.assign(&queue_batch(&[10]), Mode::Queue); // pre-fill 10 elements
        let assignments = anchor.assign(&combined, Mode::Queue);
        let parts = decompose(&assignments, &[&a, &b, &c]);

        assert_eq!(parts.len(), 3);
        // Sub A: 2 enqueues at positions 11-12, 1 dequeue at position 1.
        assert_eq!(parts[0][0].pos_lo, 11);
        assert_eq!(parts[0][0].pos_hi, 12);
        assert_eq!(parts[0][1].pos_lo, 1);
        assert_eq!(parts[0][1].pos_hi, 1);
        // Sub B: 1 enqueue at position 13 (no dequeue run).
        assert_eq!(parts[1][0].pos_lo, 13);
        assert_eq!(parts[1][0].pos_hi, 13);
        assert_eq!(parts[1].len(), 1);
        // Sub C: empty enqueue run, 2 dequeues at positions 2-3.
        assert_eq!(parts[2][0].count, 0);
        assert_eq!(parts[2][1].pos_lo, 2);
        assert_eq!(parts[2][1].pos_hi, 3);
    }

    #[test]
    fn decompose_value_bases_are_disjoint_and_ordered() {
        let a = queue_batch(&[2, 2]);
        let b = queue_batch(&[3, 1]);
        let mut combined = a.clone();
        combined.combine(&b);
        let mut anchor = AnchorState::new();
        let assignments = anchor.assign(&combined, Mode::Queue);
        let parts = decompose(&assignments, &[&a, &b]);
        // Collect (value_base, count) for every sub-run and check global
        // uniqueness of the covered value ranges.
        let mut covered = vec![];
        for part in &parts {
            for run in part {
                for v in run.value_base..run.value_base + run.count {
                    covered.push(v);
                }
            }
        }
        covered.sort_unstable();
        let expected: Vec<u64> = (1..=combined.total_ops()).collect();
        assert_eq!(covered, expected);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Decomposition partitions positions and order values exactly, for
        /// arbitrary sub-batch shapes and arbitrary pre-existing queue state.
        #[test]
        fn prop_decompose_partitions(
            prefill in 0u64..20,
            subs in proptest::collection::vec(
                proptest::collection::vec(0u64..6, 0..5), 1..6),
        ) {
            let sub_batches: Vec<Batch> = subs.iter().map(|runs| queue_batch(runs)).collect();
            let refs: Vec<&Batch> = sub_batches.iter().collect();
            let mut combined = Batch::empty();
            for b in &sub_batches { combined.combine(b); }

            let mut anchor = AnchorState::new();
            if prefill > 0 {
                anchor.assign(&queue_batch(&[prefill]), Mode::Queue);
            }
            let before = anchor;
            let assignments = anchor.assign(&combined, Mode::Queue);
            let parts = decompose(&assignments, &refs);

            // Every sub-run's op count matches its sub-batch.
            for (part, sub) in parts.iter().zip(&sub_batches) {
                prop_assert_eq!(part.len(), sub.num_runs());
                for (run_idx, run) in part.iter().enumerate() {
                    prop_assert_eq!(run.count, sub.runs()[run_idx]);
                }
            }

            // Order values cover exactly [before.counter, before.counter + total).
            let mut values: Vec<u64> = parts
                .iter()
                .flatten()
                .flat_map(|r| r.value_base..r.value_base + r.count)
                .collect();
            values.sort_unstable();
            let expected: Vec<u64> =
                (before.counter..before.counter + combined.total_ops()).collect();
            prop_assert_eq!(values, expected);

            // Enqueue positions cover exactly (before.last, anchor.last].
            let mut enq_positions: Vec<u64> = parts
                .iter()
                .flatten()
                .filter(|r| r.kind == BatchOp::Enqueue && !r.is_interval_empty())
                .flat_map(|r| r.pos_lo..=r.pos_hi)
                .collect();
            let mut expected_enq: Vec<u64> = ((before.last + 1)..=anchor.last).collect();
            enq_positions.sort_unstable();
            expected_enq.sort_unstable();
            prop_assert_eq!(enq_positions, expected_enq);

            // Dequeue positions are distinct and lie in [before.first, anchor.first).
            let mut deq_positions: Vec<u64> = parts
                .iter()
                .flatten()
                .filter(|r| r.kind == BatchOp::Dequeue && !r.is_interval_empty())
                .flat_map(|r| r.pos_lo..=r.pos_hi)
                .collect();
            deq_positions.sort_unstable();
            let expected_deq: Vec<u64> = (before.first..anchor.first).collect();
            prop_assert_eq!(deq_positions, expected_deq);
        }
    }
}
