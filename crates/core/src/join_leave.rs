//! Join, leave and update-phase handling (Section IV).
//!
//! Membership changes are handled *lazily*: a joining or leaving virtual node
//! is assigned a **responsible node** (the predecessor of its label for a
//! joiner; its cycle predecessor for a leaver).  The responsible node counts
//! the request in the `j`/`l` fields of its next batch, so the anchor learns
//! about pending membership changes through the ordinary aggregation.  When
//! the anchor observes at least `update_threshold` pending changes it attaches
//! the *update-phase* flag to the `SERVE` wave; while the flag is set no new
//! batches are sent.  During the update phase
//!
//! * joiners are spliced into the cycle (and receive the DHT data of their
//!   interval),
//! * leavers hand their state to their absorber and switch to a draining mode
//!   in which every message they still receive is forwarded (channels are
//!   reliable, so nothing is lost),
//! * acknowledgements flow up the *old* aggregation tree; once the anchor has
//!   collected them all it either broadcasts `UpdateOver` down the new tree
//!   or — if a new leftmost node exists — hands the anchor state over first
//!   and lets the new anchor end the phase.
//!
//! Deviations from the paper (documented in DESIGN.md): DHT data is handed to
//! a joiner at integration time rather than eagerly at responsibility time,
//! joining processes do not issue queue operations before they are
//! integrated, and the process currently hosting the anchor may not leave.

use crate::anchor::AnchorState;
use crate::batch::Batch;
use crate::messages::{AbsorbPayload, DhtReplyItem, JoinHandover, SkueueMsg};
use crate::node::{JoinerRecord, LeaverRecord, Role, SkueueNode, UpdatePhase};
use skueue_dht::{Payload, PendingGet, StoredEntry};
use skueue_overlay::{route_step, Label, NeighborInfo, RouteAction, RouteProgress};
use skueue_sim::actor::Context;
use skueue_sim::ids::NodeId;
use skueue_trace::TraceEvent;

impl<T: Payload> SkueueNode<T> {
    // ---------------------------------------------------------------------
    // Driver-side entry points.
    // ---------------------------------------------------------------------

    /// Points a joining node at a bootstrap contact; the join request is sent
    /// on its next timeout.
    pub fn set_bootstrap(&mut self, bootstrap: NodeId) {
        self.bootstrap = Some(bootstrap);
    }

    /// Asks this node to leave the system.  The leave request is sent to the
    /// predecessor once the node's own outstanding requests have completed.
    pub fn request_leave(&mut self) {
        self.wants_to_leave = true;
    }

    /// True once the node has fully left (drains towards its absorber).
    pub fn has_left(&self) -> bool {
        matches!(self.role, Role::Draining { .. })
    }

    /// True if the node is an integrated member of the overlay.
    pub fn is_integrated(&self) -> bool {
        matches!(self.role, Role::Active)
    }

    // ---------------------------------------------------------------------
    // Timeout hooks.
    // ---------------------------------------------------------------------

    /// Timeout behaviour of a joining node: announce the join once.
    pub(crate) fn joining_timeout(&mut self, ctx: &mut Context<SkueueMsg<T>>) {
        if self.join_sent {
            return;
        }
        if let Some(bootstrap) = self.bootstrap {
            let progress = RouteProgress::new(self.view.me.label, self.cfg.bit_budget);
            ctx.send(
                bootstrap,
                SkueueMsg::JoinRequest {
                    joiner: self.view.me,
                    progress,
                },
            );
            self.join_sent = true;
        }
    }

    /// Periodic membership work of an active node: (re-)issue a pending leave
    /// request once the node's own requests have drained.
    pub(crate) fn membership_timeout(&mut self, ctx: &mut Context<SkueueMsg<T>>) {
        self.maybe_complete_deferred_absorb(ctx);
        if self.wants_to_leave
            && !self.leave_requested
            && !self.leave_granted
            && self.own_log.is_empty()
            && self.outstanding_gets.is_empty()
            && self.pending_leavers.is_empty()
            && self.joiners.is_empty()
            && self.anchor.is_none()
        {
            ctx.send(
                self.view.pred.node,
                SkueueMsg::LeaveRequest {
                    leaver: self.view.me,
                },
            );
            self.leave_requested = true;
        }
    }

    // ---------------------------------------------------------------------
    // Message handling.
    // ---------------------------------------------------------------------

    /// Handles every membership / update-phase message (called from the main
    /// actor dispatch for the variants Stage 1–4 do not consume).
    pub(crate) fn handle_membership(
        &mut self,
        from: NodeId,
        msg: SkueueMsg<T>,
        ctx: &mut Context<SkueueMsg<T>>,
    ) {
        match msg {
            SkueueMsg::JoinRequest { joiner, progress } => {
                self.handle_join_request(joiner, progress, ctx)
            }
            SkueueMsg::Integrate { handover } => self.handle_integrate(from, *handover, ctx),
            SkueueMsg::IntegrateAck => {
                if let Some(update) = self.update.as_mut() {
                    update.awaiting_integrate_acks =
                        update.awaiting_integrate_acks.saturating_sub(1);
                }
                self.joiners.retain(|j| j.info.node != from);
                self.check_update_done(ctx);
            }
            SkueueMsg::LeaveRequest { leaver } => self.handle_leave_request(leaver, ctx),
            SkueueMsg::LeaveGranted => {
                self.leave_granted = true;
            }
            SkueueMsg::LeaveDeferred => {
                // Retry on a later timeout (once the conflicting neighbour has
                // left, the new predecessor will grant the request).
                self.leave_requested = false;
            }
            SkueueMsg::AbsorbRequest => self.handle_absorb_request(from, ctx),
            SkueueMsg::AbsorbData(payload) => self.handle_absorb_data(from, *payload, ctx),
            SkueueMsg::SiblingStatus { kind, active } => {
                self.sibling_integrated[kind.index()] = active;
            }
            SkueueMsg::SetPred { new_pred } => {
                if matches!(self.role, Role::Draining { .. }) {
                    // A splice notification caught up with a node that has
                    // already handed itself over: whoever now precedes this
                    // position must link directly to our successor (we are
                    // out of the cycle), and vice versa.
                    ctx.send(
                        new_pred.node,
                        SkueueMsg::SetSucc {
                            new_succ: self.view.succ,
                        },
                    );
                    ctx.send(self.view.succ.node, SkueueMsg::SetPred { new_pred });
                    self.view.pred = new_pred;
                    return;
                }
                self.view.pred = new_pred;
                // Invariant restoration: if we hold the anchor state but are
                // no longer the leftmost node, hand the state leftwards.
                if self.anchor.is_some() && !self.view.is_anchor() && self.update.is_none() {
                    let state = self.anchor.take().expect("checked above");
                    ctx.send(self.view.pred.node, SkueueMsg::AnchorTransfer { state });
                }
            }
            SkueueMsg::SetSucc { new_succ } => {
                self.view.succ = new_succ;
            }
            SkueueMsg::UpdateFlag { phase } => {
                if matches!(self.role, Role::Active) && self.update.is_none() && !self.suspended {
                    self.enter_update_phase(phase, Some(from), ctx);
                } else {
                    // Still busy with an older phase, flagged twice across a
                    // splice, freshly integrated (no duties yet, resumes on
                    // `UpdateOver`), or draining: confirm right away so the
                    // flagger never waits on us.  Duties this node thereby
                    // misses re-arm themselves when its own phase ends (see
                    // `handle_update_over`).
                    ctx.send(from, SkueueMsg::UpdateAck { phase });
                }
            }
            SkueueMsg::UpdateAck { phase } => {
                if let Some(update) = self.update.as_mut() {
                    if update.phase == phase {
                        update.awaiting_child_acks.retain(|&c| c != from);
                    }
                }
                self.check_update_done(ctx);
            }
            SkueueMsg::UpdateOver { phase } => self.handle_update_over(phase, ctx),
            SkueueMsg::AnchorTransfer { state } => self.handle_anchor_transfer(state, ctx),
            other => {
                debug_assert!(
                    false,
                    "unexpected message {other:?} in membership handler at {}",
                    self.view.me.vid
                );
            }
        }
    }

    // ---------------------------------------------------------------------
    // Join (Section IV-A).
    // ---------------------------------------------------------------------

    fn handle_join_request(
        &mut self,
        joiner: NeighborInfo,
        mut progress: RouteProgress,
        ctx: &mut Context<SkueueMsg<T>>,
    ) {
        // Route towards the predecessor of the joiner's label.
        match route_step(&self.view, &mut progress) {
            RouteAction::Forward(next) => {
                progress.hops += 1;
                ctx.send(next, SkueueMsg::JoinRequest { joiner, progress });
            }
            RouteAction::Deliver => {
                // This node is responsible for the joiner.
                if self.joiners.iter().any(|j| j.info.node == joiner.node) {
                    return; // duplicate announcement
                }
                self.joiners.push(JoinerRecord {
                    info: joiner,
                    handed_over: false,
                });
                self.pending_join_count += 1;
            }
        }
    }

    /// Splices all joiners this node is responsible for into the cycle and
    /// hands each its share of the DHT data.  Called during the update phase.
    fn integrate_joiners(&mut self, ctx: &mut Context<SkueueMsg<T>>) -> usize {
        if self.joiners.is_empty() {
            return 0;
        }
        let mut joiners: Vec<JoinerRecord> = self
            .joiners
            .iter()
            .filter(|j| !j.handed_over)
            .copied()
            .collect();
        if joiners.is_empty() {
            return 0;
        }
        // Sort by ring position clockwise from this node so the chain
        // me → j₁ → … → j_k → old_succ is correctly ordered even when the gap
        // wraps around the top of the ring.
        let me_label = self.view.me.label;
        joiners.sort_by_key(|j| me_label.cw_distance(j.info.label));
        let old_succ = self.view.succ;

        // Hand out the data and the final neighbour pointers.  Remember the
        // joiners so the phase-ending `UpdateOver` reaches them even if
        // their `SiblingStatus` races the broadcast at their tree parents.
        self.integrated_joiners
            .extend(joiners.iter().map(|j| j.info.node));
        let count = joiners.len();
        for (i, j) in joiners.iter().enumerate() {
            let pred = if i == 0 {
                self.view.me
            } else {
                joiners[i - 1].info
            };
            let succ = if i + 1 < count {
                joiners[i + 1].info
            } else {
                old_succ
            };
            let (entries, pending) = self.extract_store_range(j.info.label, succ.label);
            ctx.send(
                j.info.node,
                SkueueMsg::Integrate {
                    handover: Box::new(JoinHandover {
                        pred,
                        succ,
                        entries,
                        pending,
                    }),
                },
            );
        }
        // Update the cycle around the gap: our successor becomes the first
        // joiner, and the old successor's predecessor becomes the last one.
        self.view.succ = joiners[0].info;
        if old_succ.node != self.view.me.node {
            ctx.send(
                old_succ.node,
                SkueueMsg::SetPred {
                    new_pred: joiners[count - 1].info,
                },
            );
        } else {
            // Single-node corner case: we are our own successor; the last
            // joiner becomes our predecessor.
            self.view.pred = joiners[count - 1].info;
        }
        for j in &mut self.joiners {
            j.handed_over = true;
        }
        count
    }

    fn extract_store_range(
        &mut self,
        lo: Label,
        hi: Label,
    ) -> (Vec<StoredEntry<T>>, Vec<(u64, PendingGet)>) {
        let hasher = self.hasher;
        self.store
            .extract_range_with_keys(lo, hi, |position| hasher.position_key(position))
    }

    fn handle_integrate(
        &mut self,
        from: NodeId,
        handover: JoinHandover<T>,
        ctx: &mut Context<SkueueMsg<T>>,
    ) {
        debug_assert!(matches!(self.role, Role::Joining { .. }));
        self.view.pred = handover.pred;
        self.view.succ = handover.succ;
        self.role = Role::Active;
        // Do not start batching before the update phase is over.
        self.suspended = true;
        for satisfied in self.store.absorb(handover.entries, handover.pending) {
            self.reply_buffer.push(
                satisfied.get.requester,
                DhtReplyItem {
                    request: satisfied.get.request,
                    entry: satisfied.entry,
                },
            );
        }
        // Re-route DHT operations that arrived while we were not yet part of
        // the cycle (coalesced with everything else this visit routes).
        for routed in std::mem::take(&mut self.deferred_dht) {
            self.dispatch_dht(routed.op, routed.progress, ctx);
        }
        // Tell the sibling virtual nodes of this process that we are now an
        // integrated member (they may treat us as an aggregation-tree child).
        self.announce_sibling_status(true, ctx);
        ctx.send(from, SkueueMsg::IntegrateAck);
    }

    /// Notifies the process's other two virtual nodes about this node's
    /// membership status.
    fn announce_sibling_status(&self, active: bool, ctx: &mut Context<SkueueMsg<T>>) {
        let my_kind = self.view.me.vid.kind;
        for kind in skueue_overlay::VKind::ALL {
            let sibling = self.view.siblings[kind.index()];
            if sibling.node != self.view.me.node {
                ctx.send(
                    sibling.node,
                    SkueueMsg::SiblingStatus {
                        kind: my_kind,
                        active,
                    },
                );
            }
        }
    }

    /// A handed-over joiner whose integration message may still be in flight
    /// is the true owner of keys in its range; forward operations to it.
    pub(crate) fn joiner_responsible_for(&self, key: Label) -> Option<NodeId> {
        if self.joiners.is_empty() {
            return None;
        }
        let me = self.view.me.label;
        // The best candidate is the handed-over joiner with the largest label
        // that is still ≤ key (in ring order starting from this node).
        self.joiners
            .iter()
            .filter(|j| j.handed_over)
            .filter(|j| {
                // key must lie clockwise of the joiner and the joiner clockwise of us.
                me.cw_distance(j.info.label) <= me.cw_distance(key)
            })
            .max_by_key(|j| me.cw_distance(j.info.label))
            .map(|j| j.info.node)
    }

    // ---------------------------------------------------------------------
    // Leave (Section IV-B).
    // ---------------------------------------------------------------------

    fn handle_leave_request(&mut self, leaver: NeighborInfo, ctx: &mut Context<SkueueMsg<T>>) {
        // Leftmost-leaves-first priority: if we want to leave ourselves and
        // are to the left of the requester, it has to wait for us.
        if self.wants_to_leave {
            ctx.send(leaver.node, SkueueMsg::LeaveDeferred);
            return;
        }
        if self
            .pending_leavers
            .iter()
            .any(|l| l.info.node == leaver.node)
        {
            ctx.send(leaver.node, SkueueMsg::LeaveGranted);
            return;
        }
        self.pending_leavers.push(LeaverRecord {
            info: leaver,
            absorb_requested: false,
        });
        self.pending_leave_count += 1;
        ctx.send(leaver.node, SkueueMsg::LeaveGranted);
    }

    /// A leaver may only hand itself over once (a) every in-flight wave of
    /// its own has been served (it has no slot a later `Serve` could still
    /// address) and (b) it has discharged its own update-phase duties (sent
    /// its `UpdateAck`).  The update phase's wave draining (see
    /// `SkueueNode::try_drain_wave`) guarantees in-flight waves keep moving
    /// even below suspended ancestors, so deferring is always temporary.
    fn ready_to_be_absorbed(&self) -> bool {
        self.slots.is_empty() && self.update.as_ref().map(|u| u.acked).unwrap_or(true)
    }

    fn handle_absorb_request(&mut self, from: NodeId, ctx: &mut Context<SkueueMsg<T>>) {
        if !self.ready_to_be_absorbed() {
            self.absorb_deferred = Some(from);
            return;
        }
        self.send_absorb_data(from, ctx);
    }

    /// Completes a deferred absorption once the leaver is ready (checked on
    /// every timeout).
    pub(crate) fn maybe_complete_deferred_absorb(&mut self, ctx: &mut Context<SkueueMsg<T>>) {
        if self.ready_to_be_absorbed() {
            if let Some(absorber) = self.absorb_deferred.take() {
                self.send_absorb_data(absorber, ctx);
            }
        }
    }

    fn send_absorb_data(&mut self, from: NodeId, ctx: &mut Context<SkueueMsg<T>>) {
        // The leaver's stored data *moves* to the absorber — no payload
        // clones; the store is left empty for the draining role.
        let (entries, pending) = self.store.take_all();
        let child_batches: Vec<(NodeId, u64, Batch)> = self.child_batches.drain_all();
        // Joiners this node was responsible for but never integrated (their
        // announcement can race the leave) move to the absorber wholesale.
        let joiners: Vec<NeighborInfo> = std::mem::take(&mut self.joiners)
            .into_iter()
            .filter(|j| !j.handed_over)
            .map(|j| j.info)
            .collect();
        let payload = AbsorbPayload {
            pred: self.view.pred,
            succ: self.view.succ,
            entries,
            pending,
            child_batches,
            joiners,
            anchor: self.anchor.take(),
        };
        ctx.send(from, SkueueMsg::AbsorbData(Box::new(payload)));
        if !self.trace.is_off() {
            self.trace.emit(TraceEvent::Absorbed {
                process: self.process().0,
                round: ctx.round(),
            });
        }
        self.announce_sibling_status(false, ctx);
        self.role = Role::Draining { absorber: from };
    }

    fn handle_absorb_data(
        &mut self,
        from: NodeId,
        payload: AbsorbPayload<T>,
        ctx: &mut Context<SkueueMsg<T>>,
    ) {
        // Take over the leaver's DHT data and parked GETs.
        let pending: Vec<(u64, PendingGet)> = payload.pending;
        for satisfied in self.store.absorb(payload.entries, pending) {
            self.reply_buffer.push(
                satisfied.get.requester,
                DhtReplyItem {
                    request: satisfied.get.request,
                    entry: satisfied.entry,
                },
            );
        }
        // Inherit not-yet-forwarded sub-batches of the leaver's children
        // (per-child FIFO order preserved; they are combined into this
        // node's next wave and served back under the children's epochs).
        for (child, epoch, batch) in payload.child_batches {
            self.child_batches.push(child, epoch, batch);
        }
        // Take over the leaver's pending joiners and re-count them so a
        // future update phase integrates them here.
        for info in payload.joiners {
            if !self.joiners.iter().any(|j| j.info.node == info.node) {
                self.joiners.push(JoinerRecord {
                    info,
                    handed_over: false,
                });
                self.pending_join_count += 1;
            }
        }
        // Splice the leaver out of the cycle.  The leaver is *usually* still
        // our direct successor, but joiners integrated during the same update
        // phase may have been spliced in between after the leave was granted —
        // then the last spliced joiner (the leaver's current predecessor)
        // inherits the leaver's right edge, not us.
        if payload.succ.node == from {
            // The leaver was its own successor (single-node corner case);
            // nothing to re-link.
        } else if self.view.succ.node == from {
            if payload.succ.node == self.view.me.node {
                // Two-node ring: we become our own neighbour.
                self.view.succ = self.view.me;
                self.view.pred = self.view.me;
            } else {
                self.view.succ = payload.succ;
                ctx.send(
                    payload.succ.node,
                    SkueueMsg::SetPred {
                        new_pred: self.view.me,
                    },
                );
            }
        } else if payload.pred.node != self.view.me.node {
            // A spliced joiner sits between us and the leaver; re-link the
            // leaver's actual neighbours with each other.
            ctx.send(
                payload.pred.node,
                SkueueMsg::SetSucc {
                    new_succ: payload.succ,
                },
            );
            if payload.succ.node == self.view.me.node {
                self.view.pred = payload.pred;
            } else {
                ctx.send(
                    payload.succ.node,
                    SkueueMsg::SetPred {
                        new_pred: payload.pred,
                    },
                );
            }
        } else {
            // Our successor already moved on to a spliced joiner, but the
            // leaver handed itself over before processing that splice's
            // `SetPred`, so its view still names us as predecessor.  The
            // in-flight `SetPred` reaches the (by then draining) leaver,
            // which performs the re-link — see the draining branch of the
            // `SetPred` handler.
        }
        // If the leaver held the anchor state, pass it on to the new leftmost
        // node (the leaver's successor); the cluster normally prevents this
        // case, but handle it defensively.
        if let Some(state) = payload.anchor {
            ctx.send(self.view.succ.node, SkueueMsg::AnchorTransfer { state });
        }
        self.pending_leavers.retain(|l| l.info.node != from);
        // The leaver is out of the new tree; remember it so the phase-ending
        // `UpdateOver` still reaches its old subtree through it.
        self.absorbed_leavers.push(from);
        if let Some(update) = self.update.as_mut() {
            update.awaiting_absorb_data = update.awaiting_absorb_data.saturating_sub(1);
        }
        self.check_update_done(ctx);
    }

    // ---------------------------------------------------------------------
    // Update phase.
    // ---------------------------------------------------------------------

    /// Enters the update phase: suspends batching, flags this node's current
    /// children (exactly the set it will await `UpdateAck`s from), performs
    /// its integration/absorption duties, and prepares the ack bookkeeping.
    /// `old_parent` is the node the flag came from (`None` at the anchor) —
    /// the node this one acks to once its subtree is done.
    pub(crate) fn enter_update_phase(
        &mut self,
        phase: u64,
        old_parent: Option<NodeId>,
        ctx: &mut Context<SkueueMsg<T>>,
    ) {
        // Phase monotonicity: a node never participates in an older phase
        // after a younger one (the phase tag on update control plus the
        // staleness guard in `handle_update_over` guarantee it; the model
        // checker proves the same invariant on the abstraction).
        debug_assert!(
            phase >= self.last_update_phase,
            "update phases must be monotone at {}: entering {} after {}",
            self.view.me.vid,
            phase,
            self.last_update_phase
        );
        self.last_update_phase = phase;
        self.suspended = true;
        if !self.trace.is_off() {
            self.trace.emit(TraceEvent::PhaseEnter {
                phase,
                round: ctx.round(),
            });
        }
        let awaiting_child_acks = self.tree_children().to_vec();
        // Flag the children *before* integrating joiners or splicing the
        // cycle, so the flagged set matches the awaited set.
        for &child in &awaiting_child_acks {
            ctx.send(child, SkueueMsg::UpdateFlag { phase });
        }
        let integrated = self.integrate_joiners(ctx);
        // Ask granted leavers for their state.
        let mut absorb_requests = 0;
        let leavers: Vec<NodeId> = self
            .pending_leavers
            .iter()
            .filter(|l| !l.absorb_requested)
            .map(|l| l.info.node)
            .collect();
        for leaver in leavers {
            ctx.send(leaver, SkueueMsg::AbsorbRequest);
            absorb_requests += 1;
        }
        for l in &mut self.pending_leavers {
            l.absorb_requested = true;
        }
        self.update = Some(UpdatePhase {
            phase,
            awaiting_child_acks,
            old_parent,
            awaiting_integrate_acks: integrated,
            awaiting_absorb_data: absorb_requests,
            acked: false,
        });
        self.check_update_done(ctx);
    }

    /// Checks whether this node has finished all update-phase duties and can
    /// acknowledge to its old parent (or, at the anchor, end the phase).
    pub(crate) fn check_update_done(&mut self, ctx: &mut Context<SkueueMsg<T>>) {
        let done = match self.update.as_ref() {
            Some(u) => {
                !u.acked
                    && u.awaiting_child_acks.is_empty()
                    && u.awaiting_integrate_acks == 0
                    && u.awaiting_absorb_data == 0
            }
            None => false,
        };
        if !done {
            return;
        }
        let (old_parent, phase) = match self.update.as_ref() {
            Some(u) => (u.old_parent, u.phase),
            None => return,
        };
        if let Some(update) = self.update.as_mut() {
            update.acked = true;
        }
        match old_parent {
            Some(parent) => ctx.send(parent, SkueueMsg::UpdateAck { phase }),
            None => self.finish_update_phase(phase, ctx),
        }
    }

    /// The (old) anchor ends the update phase: either by broadcasting
    /// `UpdateOver` down the new tree, or — when a smaller-labelled node has
    /// joined — by handing the anchor state to the new leftmost node first.
    fn finish_update_phase(&mut self, phase: u64, ctx: &mut Context<SkueueMsg<T>>) {
        if self.view.is_anchor() || self.anchor.is_none() {
            // Still the leftmost node (or not the anchor at all — defensive):
            // end the phase ourselves.
            self.handle_update_over(phase, ctx);
        } else {
            // A node with a smaller label exists now; walk the anchor state
            // towards it.  The new anchor ends the update phase.
            let state = self.anchor.take().expect("checked above");
            ctx.send(self.view.pred.node, SkueueMsg::AnchorTransfer { state });
            // Resume ourselves; `UpdateOver` from the new anchor will also be
            // forwarded to our subtree.
        }
    }

    fn handle_update_over(&mut self, phase: u64, ctx: &mut Context<SkueueMsg<T>>) {
        // Mutation gate: compiling with `--features model-mutation` removes
        // this staleness guard, re-introducing the PR-3 race in which a
        // delayed `UpdateOver` from an older phase cancels the younger phase
        // this node is participating in.  The bounded model check must find
        // that wedge (see `crates/model/tests/mutation_gate.rs`).
        #[cfg(not(feature = "model-mutation"))]
        if let Some(update) = self.update.as_ref() {
            if update.phase > phase {
                // A delayed end-of-phase message from an *older* phase must
                // not cancel the younger phase this node is participating in
                // (it would wipe the ack bookkeeping and wedge the phase).
                return;
            }
        }
        // Forward only when this node was actually participating (in the
        // phase, or suspended as a freshly integrated joiner): a stray
        // duplicate must not cascade down the whole subtree again, and a
        // node that skipped the phase has no participants below it.
        let participating = self.suspended || self.update.is_some();
        self.suspended = false;
        self.update = None;
        if participating {
            if !self.trace.is_off() {
                self.trace.emit(TraceEvent::PhaseOver {
                    phase,
                    round: ctx.round(),
                });
            }
            for child in self.tree_children() {
                ctx.send(child, SkueueMsg::UpdateOver { phase });
            }
            // Leavers absorbed this phase are no longer anyone's tree child,
            // but their old subtrees may contain nodes only reachable
            // through them (a sibling that could not leave yet); relay the
            // phase end.
            for leaver in std::mem::take(&mut self.absorbed_leavers) {
                ctx.send(leaver, SkueueMsg::UpdateOver { phase });
            }
            // Likewise for joiners integrated this phase, whose tree parents
            // may not know them yet (`SiblingStatus` still in flight).
            for joiner in std::mem::take(&mut self.integrated_joiners) {
                ctx.send(joiner, SkueueMsg::UpdateOver { phase });
            }
        }
        // Duties this node could not discharge in the phases it saw —
        // joiners announced after its `integrate_joiners` ran, leavers
        // granted after its absorb requests went out, or phases it had to
        // decline while busy with an older one — re-arm the churn counters
        // so a future phase picks them up.  `max` (not `+=`) keeps this
        // idempotent: an original announcement increment that has not been
        // flushed into a wave yet, or a duplicate `UpdateOver` delivery,
        // must not double-count the same duty.
        let missed = self.joiners.iter().filter(|j| !j.handed_over).count() as u64;
        self.pending_join_count = self.pending_join_count.max(missed);
        let missed = self
            .pending_leavers
            .iter()
            .filter(|l| !l.absorb_requested)
            .count() as u64;
        self.pending_leave_count = self.pending_leave_count.max(missed);
    }

    fn handle_anchor_transfer(&mut self, state: AnchorState, ctx: &mut Context<SkueueMsg<T>>) {
        if self.view.is_anchor() {
            let phase = state.phases_started;
            self.adopt_anchor(state);
            // The new anchor ends the update phase for everyone.
            self.handle_update_over(phase, ctx);
        } else {
            // Keep walking left.
            ctx.send(self.view.pred.node, SkueueMsg::AnchorTransfer { state });
        }
    }
}
