//! Small-n abstraction of the Skueue protocol core.
//!
//! The model keeps exactly the machinery the membership races of PR 3 live
//! in — join/leave/update phase state (`UpdateFlag`/`UpdateAck`/
//! `UpdateOver{phase}`, `pending_churn`, absorber hand-over), the credited
//! aggregate→assign→serve wave cycle, and anchor re-anchoring — and abstracts
//! everything else away:
//!
//! * the aggregation tree is a star rooted at the anchor (depth does not
//!   matter for the phase races: they are about *stale* phase messages and
//!   drained hand-overs, both of which exist on a one-hop tree);
//! * the DHT is folded into the anchor: the queue is a FIFO of abstract
//!   elements held where the positions are assigned, so Definition 1 can be
//!   checked on the abstract history with the real `skueue-verify` checkers;
//! * rounds are gone: the network is a multiset of in-flight messages and an
//!   adversarial scheduler (the explorer) picks the delivery order, bounded
//!   per channel by [`Scenario::reorder_window`] (`1` = FIFO channels).
//!
//! One global [`ModelState`] plus the enabled-[`Action`] relation implement
//! [`crate::machine::Machine`], which the exhaustive explorer walks.

use crate::machine::Machine;
use skueue_sim::ids::{ProcessId, RequestId};
use skueue_verify::{OpKind, OpRecord, OpResult, OrderKey};
use std::collections::VecDeque;
use std::fmt;

/// Hard cap on model nodes (the bounded scenarios use ≤ 5).
pub const MAX_NODES: usize = 5;

/// An abstract request issued at a model node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Req {
    /// Issuing node.
    pub node: u8,
    /// Per-node sequence number (issue order).
    pub seq: u8,
    /// `true` = enqueue, `false` = dequeue.
    pub is_enqueue: bool,
    /// Payload value (globally unique per enqueue; 0 for dequeues).
    pub value: u8,
}

/// Outcome of an assigned request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbsResult {
    /// The enqueue was assigned a position.
    Enqueued,
    /// The dequeue returned the element enqueued by `(node, seq)`.
    Returned(u8, u8),
    /// The dequeue returned `⊥`.
    Empty,
}

/// A completed abstract request: the model's history record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Completed {
    /// The request.
    pub req: Req,
    /// Its outcome.
    pub result: AbsResult,
    /// Position in the anchor's total order `≺`.
    pub order: u16,
    /// Payload carried back (enqueued value for matched dequeues, 0 for `⊥`).
    pub value: u8,
}

/// The anchor's abstract state (travels in [`Msg::AnchorTransfer`] during
/// re-anchoring, like the real `AnchorState`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct AbsAnchor {
    /// Next free position in `≺` (the real `counter`; starts at 1).
    pub counter: u16,
    /// FIFO of stored elements as `(node, seq, value)` of their enqueue.
    pub queue: VecDeque<(u8, u8, u8)>,
    /// Update phases started so far (the real `phases_started`).
    pub phases_started: u8,
    /// Join/leave events folded into batches but not yet handled by a phase.
    pub pending_churn: u8,
    /// Joiners waiting for the next phase.
    pub pending_joiners: Vec<u8>,
    /// Leavers waiting for the next phase.
    pub pending_leavers: Vec<u8>,
    /// The currently open phase, if any.
    pub open_phase: Option<PhaseWait>,
}

/// What the anchor is still waiting for before it can end the open phase.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PhaseWait {
    /// The phase number.
    pub phase: u8,
    /// Flagged nodes that still owe an `UpdateAck`.
    pub awaiting_acks: Vec<u8>,
    /// Joiners that still owe an `IntegrateAck`.
    pub awaiting_integrate: Vec<u8>,
    /// Leavers that still owe their `AbsorbData` hand-over.
    pub awaiting_absorb: Vec<u8>,
    /// Everyone that must receive `UpdateOver` when the phase ends.
    pub participants: Vec<u8>,
}

/// Membership role of a model node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AbsRole {
    /// Not part of the system (yet).
    #[default]
    Absent,
    /// Fully integrated member.
    Active,
    /// Sent `JoinRequest`, not yet integrated.
    Joining,
    /// Granted leave, handing state to its absorber.
    Draining,
    /// Departed.
    Left,
}

/// Per-node model state.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct AbsNode {
    /// Membership role.
    pub role: AbsRole,
    /// Whether this node currently holds the anchor.
    pub is_anchor: bool,
    /// Suspended by an `UpdateFlag` (no new waves until `UpdateOver`).
    pub suspended: bool,
    /// Highest phase number this node has seen (monotone).
    pub phase: u8,
    /// Phase this node currently participates in.
    pub in_phase: Option<u8>,
    /// Whether the node has sent its ack/hand-over for `in_phase`.
    pub acked: bool,
    /// Aggregate-channel credit: `true` iff no un-acked wave is in flight.
    pub credit: bool,
    /// Issued requests not yet aggregated into a wave.
    pub pending: Vec<Req>,
    /// Number of scripted requests already issued at this node.
    pub issued: u8,
    /// Where this node believes the anchor lives.
    pub anchor_hint: u8,
    /// Set on a former anchor: forward anchor-bound messages here.
    pub forward_to: Option<u8>,
    /// Set once the node has requested leave (stops issuing).
    pub leave_requested: bool,
}

/// An abstract protocol message.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Msg {
    /// A wave: the child's batched requests, credited (`from` = the child).
    Aggregate {
        /// The aggregating child (acks and serves return to it).
        from: u8,
        /// The batch.
        ops: Vec<Req>,
    },
    /// Credit return for the child's aggregate channel.
    AggregateAck,
    /// Stage-3 results travelling back to the requester.
    Serve {
        /// The completed records.
        records: Vec<Completed>,
    },
    /// A joiner announcing itself to the anchor.
    JoinRequest {
        /// The joiner.
        joiner: u8,
    },
    /// A member asking the anchor for permission to leave.
    LeaveRequest {
        /// The leaver.
        leaver: u8,
    },
    /// Phase start, broadcast down the (star) tree.
    UpdateFlag {
        /// The phase number.
        phase: u8,
    },
    /// A flagged node reporting itself drained.
    UpdateAck {
        /// The phase number.
        phase: u8,
    },
    /// Phase end, broadcast to every participant.
    UpdateOver {
        /// The phase number.
        phase: u8,
    },
    /// The anchor integrating a joiner during a phase.
    Integrate {
        /// The phase number.
        phase: u8,
    },
    /// The joiner confirming its integration.
    IntegrateAck {
        /// The phase number.
        phase: u8,
    },
    /// The anchor granting a leave: hand your state to the absorber.
    AbsorbRequest {
        /// The phase number.
        phase: u8,
    },
    /// The leaver's hand-over to its absorber (the anchor in the model).
    AbsorbData {
        /// The departing node.
        leaver: u8,
    },
    /// Re-anchoring: the anchor state walking to its new host.
    AnchorTransfer {
        /// The travelling anchor state.
        anchor: AbsAnchor,
    },
}

/// An in-flight message.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Envelope {
    /// Sender.
    pub src: u8,
    /// Receiver.
    pub dst: u8,
    /// Payload.
    pub msg: Msg,
}

/// One global state of the abstract protocol.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModelState {
    /// Per-node state, indexed by node id.
    pub nodes: Vec<AbsNode>,
    /// In-flight messages in send order (delivery choice is the explorer's).
    pub network: Vec<Envelope>,
    /// Which node holds the anchor (`None` while an `AnchorTransfer` flies).
    pub anchor_at: Option<u8>,
    /// The anchor state, kept here while hosted (moved into the transfer
    /// message while travelling).
    pub anchor: Option<AbsAnchor>,
    /// Completed requests in completion order — the abstract history.
    pub history: Vec<Completed>,
    /// Joins not yet injected (indices into [`Scenario::joins`]).
    pub joins_left: u8,
    /// Leaves not yet injected (indices into [`Scenario::leaves`]).
    pub leaves_left: u8,
    /// Next enqueue payload value.
    pub next_value: u8,
}

/// One atomic transition of the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Issue the node's next scripted request.
    Issue(u8),
    /// A child batches its pending requests into a wave.
    OpenWave(u8),
    /// The anchor assigns its own pending requests and takes the update
    /// decision (starting a phase when churn is pending and none is open).
    AnchorWave,
    /// A suspended, drained node sends its `UpdateAck`.
    SendAck(u8),
    /// A draining leaver hands its state to the absorber.
    SendAbsorb(u8),
    /// Deliver `network[index]`.
    Deliver(u8),
    /// Inject the next scripted join.
    InjectJoin,
    /// Inject the next scripted leave.
    InjectLeave,
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Issue(n) => write!(f, "issue@{n}"),
            Action::OpenWave(n) => write!(f, "wave@{n}"),
            Action::AnchorWave => write!(f, "anchor-wave"),
            Action::SendAck(n) => write!(f, "ack@{n}"),
            Action::SendAbsorb(n) => write!(f, "absorb@{n}"),
            Action::Deliver(i) => write!(f, "deliver#{i}"),
            Action::InjectJoin => write!(f, "inject-join"),
            Action::InjectLeave => write!(f, "inject-leave"),
        }
    }
}

/// A bounded scenario: the fixed cast and script the explorer closes over.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Nodes `0..initial_nodes` start as active members; node 0 is the
    /// anchor.
    pub initial_nodes: u8,
    /// Scripted requests: `(node, is_enqueue)`, issued per node in order.
    pub script: Vec<(u8, bool)>,
    /// Nodes that join mid-run (must start `Absent`).
    pub joins: Vec<u8>,
    /// Nodes that leave mid-run (never node 0).
    pub leaves: Vec<u8>,
    /// Per-channel delivery window: any of the first `reorder_window`
    /// messages of a `(src, dst)` channel may be delivered next (`1` models
    /// FIFO channels, larger values model bounded reordering).
    pub reorder_window: u8,
    /// After the first phase ends, hand the anchor to this node.
    pub reanchor_to: Option<u8>,
}

impl Scenario {
    /// The bounded CI instance: 3 members, one join + one leave (two phases
    /// reachable), four requests, reordering window 2.  Small enough for an
    /// exhaustive traversal in seconds, big enough to reach every PR-3
    /// membership race shape (see MODEL.md).
    pub fn bounded_default() -> Self {
        Scenario {
            initial_nodes: 3,
            script: vec![(1, true), (2, true), (1, false), (2, false)],
            joins: vec![3],
            leaves: vec![2],
            reorder_window: 2,
            reanchor_to: None,
        }
    }

    /// A reduced instance for debug builds (the plain `cargo test`
    /// workspace job): same shape as [`Scenario::bounded_default`] — both
    /// churn events, two requests — but a state space two orders of
    /// magnitude smaller.  The release CI step runs the full bounded
    /// instance.
    pub fn smoke() -> Self {
        Scenario {
            initial_nodes: 3,
            script: vec![(1, true), (2, false)],
            joins: vec![3],
            leaves: vec![2],
            reorder_window: 2,
            reanchor_to: None,
        }
    }

    /// The deep instance behind `SKUEUE_MODEL_FULL=1`: 3 members + 1 joiner,
    /// **two** leaves (three phases reachable, leaver-absorbs-leaver shapes
    /// the CI instances cannot express), three requests, reordering window
    /// **3** (~941k states, ~4M transitions).  Sized to stay an *exhaustive*
    /// traversal under the state cap — widening any knob (a fourth member,
    /// a fourth request) overflows the 4M-state cap.
    pub fn full() -> Self {
        Scenario {
            initial_nodes: 3,
            script: vec![(1, true), (2, true), (2, false)],
            joins: vec![3],
            leaves: vec![1, 2],
            reorder_window: 3,
            reanchor_to: None,
        }
    }

    /// A bounded re-anchoring instance: after the join's phase completes the
    /// anchor walks from node 0 to node 1, with traffic in flight.
    pub fn reanchor() -> Self {
        Scenario {
            initial_nodes: 3,
            script: vec![(1, true), (2, true), (2, false)],
            joins: vec![3],
            leaves: vec![],
            reorder_window: 2,
            reanchor_to: Some(1),
        }
    }

    /// Total scripted requests for `node`.
    fn script_len(&self, node: u8) -> u8 {
        self.script.iter().filter(|(n, _)| *n == node).count() as u8
    }

    /// The `idx`-th scripted request of `node`.
    fn script_op(&self, node: u8, idx: u8) -> Option<bool> {
        self.script
            .iter()
            .filter(|(n, _)| *n == node)
            .nth(idx as usize)
            .map(|(_, e)| *e)
    }

    /// Number of nodes the scenario can ever touch.
    pub fn node_count(&self) -> usize {
        let joined = self.joins.iter().copied().max().map_or(0, |m| m + 1);
        (self.initial_nodes.max(joined) as usize).max(1)
    }
}

/// The machine: a [`Scenario`] interpreted as a transition system.
pub struct ProtocolModel {
    /// The scenario being explored.
    pub scenario: Scenario,
}

impl ProtocolModel {
    /// Wraps a scenario.
    pub fn new(scenario: Scenario) -> Self {
        assert!(
            scenario.node_count() <= MAX_NODES,
            "model is bounded to 5 nodes"
        );
        assert!(
            scenario.reorder_window >= 1,
            "window 0 would deadlock every channel"
        );
        ProtocolModel { scenario }
    }

    /// Whether `network[i]` is deliverable under the per-channel window:
    /// it must be among the first `reorder_window` messages of its channel.
    fn deliverable(&self, state: &ModelState, i: usize) -> bool {
        let e = &state.network[i];
        let mut earlier = 0u8;
        for prior in &state.network[..i] {
            if prior.src == e.src && prior.dst == e.dst {
                earlier += 1;
            }
        }
        earlier < self.scenario.reorder_window
    }
}

fn send(state: &mut ModelState, src: u8, dst: u8, msg: Msg) {
    state.network.push(Envelope { src, dst, msg });
}

/// Messages that must be handled by (or forwarded to) the anchor's host.
fn requires_anchor(msg: &Msg) -> bool {
    matches!(
        msg,
        Msg::Aggregate { .. }
            | Msg::JoinRequest { .. }
            | Msg::LeaveRequest { .. }
            | Msg::UpdateAck { .. }
            | Msg::IntegrateAck { .. }
            | Msg::AbsorbData { .. }
    )
}

/// Assigns a batch at the anchor: positions from `counter`, FIFO matching
/// against the abstract queue.  Returns the completed records.
fn assign(anchor: &mut AbsAnchor, ops: &[Req]) -> Vec<Completed> {
    let mut out = Vec::with_capacity(ops.len());
    for op in ops {
        let order = anchor.counter;
        anchor.counter += 1;
        let (result, value) = if op.is_enqueue {
            anchor.queue.push_back((op.node, op.seq, op.value));
            (AbsResult::Enqueued, op.value)
        } else {
            match anchor.queue.pop_front() {
                Some((n, s, v)) => (AbsResult::Returned(n, s), v),
                None => (AbsResult::Empty, 0),
            }
        };
        out.push(Completed {
            req: *op,
            result,
            order,
            value,
        });
    }
    out
}

/// Ends the open phase if nothing is awaited any more: broadcasts
/// `UpdateOver` and, when the scenario says so, starts re-anchoring.
fn try_finish_phase(model: &ProtocolModel, state: &mut ModelState, at: u8) {
    let anchor = state.anchor.as_mut().expect("phase lives at the anchor");
    let done = anchor.open_phase.as_ref().is_some_and(|w| {
        w.awaiting_acks.is_empty()
            && w.awaiting_integrate.is_empty()
            && w.awaiting_absorb.is_empty()
    });
    if !done {
        return;
    }
    let wait = anchor.open_phase.take().expect("checked above");
    let first_phase = anchor.phases_started == 1;
    for &p in &wait.participants {
        send(state, at, p, Msg::UpdateOver { phase: wait.phase });
    }
    if let Some(target) = model.scenario.reanchor_to {
        let target_active = matches!(state.nodes[target as usize].role, AbsRole::Active);
        if first_phase && target != at && target_active {
            let travelling = state.anchor.take().expect("anchor is here");
            state.anchor_at = None;
            state.nodes[at as usize].is_anchor = false;
            state.nodes[at as usize].forward_to = Some(target);
            send(
                state,
                at,
                target,
                Msg::AnchorTransfer { anchor: travelling },
            );
        }
    }
}

impl Machine for ProtocolModel {
    type State = ModelState;
    type Action = Action;

    fn initial(&self) -> ModelState {
        let n = self.scenario.node_count();
        let mut nodes = vec![AbsNode::default(); n];
        for (i, node) in nodes
            .iter_mut()
            .enumerate()
            .take(self.scenario.initial_nodes as usize)
        {
            node.role = AbsRole::Active;
            node.credit = true;
            node.is_anchor = i == 0;
        }
        ModelState {
            nodes,
            network: Vec::new(),
            anchor_at: Some(0),
            anchor: Some(AbsAnchor {
                counter: 1,
                ..AbsAnchor::default()
            }),
            history: Vec::new(),
            joins_left: self.scenario.joins.len() as u8,
            leaves_left: self.scenario.leaves.len() as u8,
            next_value: 1,
        }
    }

    fn actions(&self, s: &ModelState, out: &mut Vec<Action>) {
        for (i, node) in s.nodes.iter().enumerate() {
            let i8 = i as u8;
            // Issue: the node's next scripted request, while an active,
            // non-leaving member (matches `process_may_issue`).
            if matches!(node.role, AbsRole::Active)
                && !node.leave_requested
                && node.issued < self.scenario.script_len(i8)
            {
                out.push(Action::Issue(i8));
            }
            // OpenWave: active non-anchor child with pending requests,
            // credit in hand and not suspended.
            if matches!(node.role, AbsRole::Active)
                && !node.is_anchor
                && !node.suspended
                && node.credit
                && !node.pending.is_empty()
            {
                out.push(Action::OpenWave(i8));
            }
            // SendAck: flagged + drained, ack still owed.
            if matches!(node.role, AbsRole::Active)
                && node.in_phase.is_some()
                && !node.acked
                && node.credit
            {
                out.push(Action::SendAck(i8));
            }
            // SendAbsorb: a draining leaver that is drained hands over.
            if matches!(node.role, AbsRole::Draining) && !node.acked && node.credit {
                out.push(Action::SendAbsorb(i8));
            }
        }
        // AnchorWave: the anchor has own pending requests, or an update
        // decision to take.
        if let (Some(at), Some(anchor)) = (s.anchor_at, s.anchor.as_ref()) {
            let own_pending = !s.nodes[at as usize].pending.is_empty();
            let decision = anchor.pending_churn > 0 && anchor.open_phase.is_none();
            if own_pending || decision {
                out.push(Action::AnchorWave);
            }
        }
        // Deliveries, bounded per channel.  A message that needs the anchor
        // stays in flight while its destination neither hosts the anchor nor
        // knows where it went (an `AnchorTransfer` inbound on another
        // channel will enable it).
        for i in 0..s.network.len() {
            if !self.deliverable(s, i) {
                continue;
            }
            let e = &s.network[i];
            if requires_anchor(&e.msg)
                && s.anchor_at != Some(e.dst)
                && s.nodes[e.dst as usize].forward_to.is_none()
            {
                continue;
            }
            out.push(Action::Deliver(i as u8));
        }
        // Churn injections.
        if s.joins_left > 0 {
            out.push(Action::InjectJoin);
        }
        if s.leaves_left > 0 {
            let l = self.scenario.leaves[self.scenario.leaves.len() - s.leaves_left as usize];
            let node = &s.nodes[l as usize];
            // Leave gating (the real `membership_timeout`): no pending
            // requests, no wave in flight, not already leaving, and the
            // node must be an active non-anchor member.
            let quiet = node.pending.is_empty()
                && node.credit
                && !node.leave_requested
                && !node.is_anchor
                && matches!(node.role, AbsRole::Active)
                && !s.network.iter().any(|e| {
                    (e.src == l && matches!(e.msg, Msg::Aggregate { .. }))
                        || (e.dst == l && matches!(e.msg, Msg::Serve { .. }))
                });
            if quiet {
                out.push(Action::InjectLeave);
            }
        }
    }

    fn apply(&self, s: &ModelState, action: &Action) -> ModelState {
        let mut s = s.clone();
        match *action {
            Action::Issue(n) => {
                let node = &mut s.nodes[n as usize];
                let is_enqueue = self
                    .scenario
                    .script_op(n, node.issued)
                    .expect("enabled only while script remains");
                let value = if is_enqueue {
                    let v = s.next_value;
                    s.next_value += 1;
                    v
                } else {
                    0
                };
                let req = Req {
                    node: n,
                    seq: node.issued,
                    is_enqueue,
                    value,
                };
                node.issued += 1;
                node.pending.push(req);
            }
            Action::OpenWave(n) => {
                let node = &mut s.nodes[n as usize];
                let ops = std::mem::take(&mut node.pending);
                node.credit = false;
                let dst = node.anchor_hint;
                send(&mut s, n, dst, Msg::Aggregate { from: n, ops });
            }
            Action::AnchorWave => {
                let at = s.anchor_at.expect("enabled only with a hosted anchor");
                let ops = std::mem::take(&mut s.nodes[at as usize].pending);
                if !ops.is_empty() {
                    let anchor = s.anchor.as_mut().expect("hosted");
                    let records = assign(anchor, &ops);
                    s.history.extend(records);
                }
                // The update decision, folded into the anchor's wave step
                // exactly like `assign_wave` + `take_update_decision`.
                let anchor = s.anchor.as_mut().expect("hosted");
                if anchor.pending_churn > 0 && anchor.open_phase.is_none() {
                    anchor.pending_churn = 0;
                    anchor.phases_started += 1;
                    let phase = anchor.phases_started;
                    let joiners = std::mem::take(&mut anchor.pending_joiners);
                    let leavers = std::mem::take(&mut anchor.pending_leavers);
                    let mut flagged = Vec::new();
                    for (i, node) in s.nodes.iter().enumerate() {
                        let i8 = i as u8;
                        if i8 != at
                            && matches!(node.role, AbsRole::Active)
                            && !leavers.contains(&i8)
                        {
                            flagged.push(i8);
                        }
                    }
                    let mut participants = flagged.clone();
                    participants.extend(&joiners);
                    participants.extend(&leavers);
                    let anchor = s.anchor.as_mut().expect("hosted");
                    anchor.open_phase = Some(PhaseWait {
                        phase,
                        awaiting_acks: flagged.clone(),
                        awaiting_integrate: joiners.clone(),
                        awaiting_absorb: leavers.clone(),
                        participants,
                    });
                    for &f in &flagged {
                        send(&mut s, at, f, Msg::UpdateFlag { phase });
                    }
                    for &j in &joiners {
                        send(&mut s, at, j, Msg::Integrate { phase });
                    }
                    for &l in &leavers {
                        send(&mut s, at, l, Msg::AbsorbRequest { phase });
                    }
                    try_finish_phase(self, &mut s, at);
                }
            }
            Action::SendAck(n) => {
                let node = &mut s.nodes[n as usize];
                let phase = node.in_phase.expect("enabled only while flagged");
                node.acked = true;
                let dst = node.anchor_hint;
                send(&mut s, n, dst, Msg::UpdateAck { phase });
            }
            Action::SendAbsorb(n) => {
                let node = &mut s.nodes[n as usize];
                node.acked = true;
                let dst = node.anchor_hint;
                send(&mut s, n, dst, Msg::AbsorbData { leaver: n });
            }
            Action::InjectJoin => {
                let j = self.scenario.joins[self.scenario.joins.len() - s.joins_left as usize];
                s.joins_left -= 1;
                let node = &mut s.nodes[j as usize];
                debug_assert!(matches!(node.role, AbsRole::Absent));
                node.role = AbsRole::Joining;
                node.credit = true;
                let dst = node.anchor_hint;
                send(&mut s, j, dst, Msg::JoinRequest { joiner: j });
            }
            Action::InjectLeave => {
                let l = self.scenario.leaves[self.scenario.leaves.len() - s.leaves_left as usize];
                s.leaves_left -= 1;
                let node = &mut s.nodes[l as usize];
                node.leave_requested = true;
                let dst = node.anchor_hint;
                send(&mut s, l, dst, Msg::LeaveRequest { leaver: l });
            }
            Action::Deliver(i) => {
                let env = s.network.remove(i as usize);
                deliver(self, &mut s, env);
            }
        }
        s
    }

    fn encode(&self, s: &ModelState, out: &mut Vec<u8>) {
        use std::hash::{Hash, Hasher};
        // Exact structural encoding via the derived Hash would risk
        // collisions; instead serialise the state canonically.  `Hash` into
        // a byte sink keeps this short and deterministic within a build:
        // the explorer additionally stores full encodings, so dedup is
        // exact as long as this function is injective.  We therefore write
        // the fields out explicitly.
        struct Sink<'a>(&'a mut Vec<u8>);
        impl Hasher for Sink<'_> {
            fn finish(&self) -> u64 {
                0
            }
            fn write(&mut self, bytes: &[u8]) {
                self.0.extend_from_slice(bytes);
            }
        }
        let mut sink = Sink(out);
        s.hash(&mut sink);
    }
}

/// Delivery semantics — one arm per message kind.
fn deliver(model: &ProtocolModel, s: &mut ModelState, env: Envelope) {
    let Envelope { src, dst, msg } = env;
    // A former anchor forwards anchor-bound messages to the new host
    // (clients keep sending to their stale hint until corrected).
    if s.nodes[dst as usize].forward_to.is_some() {
        let anchor_bound = matches!(
            msg,
            Msg::Aggregate { .. }
                | Msg::JoinRequest { .. }
                | Msg::LeaveRequest { .. }
                | Msg::UpdateAck { .. }
                | Msg::IntegrateAck { .. }
                | Msg::AbsorbData { .. }
        );
        if anchor_bound {
            let target = s.nodes[dst as usize].forward_to.expect("checked");
            send(s, src, target, msg);
            return;
        }
    }
    match msg {
        Msg::Aggregate { from, ops } => {
            let anchor = s.anchor.as_mut().expect("aggregates reach the anchor");
            let records = assign(anchor, &ops);
            send(s, dst, from, Msg::AggregateAck);
            send(s, dst, from, Msg::Serve { records });
        }
        Msg::AggregateAck => {
            let node = &mut s.nodes[dst as usize];
            debug_assert!(!node.credit, "credit channel must be serialised");
            node.credit = true;
            // Seeing traffic from the (possibly new) anchor fixes the hint.
            node.anchor_hint = src;
        }
        Msg::Serve { records } => {
            s.history.extend(records);
            s.nodes[dst as usize].anchor_hint = src;
        }
        Msg::JoinRequest { joiner } => {
            let anchor = s.anchor.as_mut().expect("join requests reach the anchor");
            anchor.pending_churn += 1;
            anchor.pending_joiners.push(joiner);
        }
        Msg::LeaveRequest { leaver } => {
            let anchor = s.anchor.as_mut().expect("leave requests reach the anchor");
            anchor.pending_churn += 1;
            anchor.pending_leavers.push(leaver);
        }
        Msg::UpdateFlag { phase } => {
            let node = &mut s.nodes[dst as usize];
            if phase < node.phase {
                // Stale flag — cannot happen while phases are serialised by
                // the anchor, but mirror the real node's defensiveness.
                return;
            }
            node.phase = phase;
            node.in_phase = Some(phase);
            node.suspended = true;
            node.acked = false;
        }
        Msg::UpdateAck { phase } => {
            let at = dst;
            let anchor = s.anchor.as_mut().expect("acks reach the anchor");
            if let Some(wait) = anchor.open_phase.as_mut() {
                if wait.phase == phase {
                    wait.awaiting_acks.retain(|&n| n != src);
                }
            }
            try_finish_phase(model, s, at);
        }
        Msg::Integrate { phase } => {
            let node = &mut s.nodes[dst as usize];
            node.role = AbsRole::Active;
            node.phase = phase;
            node.in_phase = Some(phase);
            node.suspended = true;
            node.acked = true; // joiners owe an IntegrateAck, not an UpdateAck
            node.credit = true;
            node.anchor_hint = src;
            send(s, dst, src, Msg::IntegrateAck { phase });
        }
        Msg::IntegrateAck { phase } => {
            let at = dst;
            let anchor = s.anchor.as_mut().expect("integrate acks reach the anchor");
            if let Some(wait) = anchor.open_phase.as_mut() {
                if wait.phase == phase {
                    wait.awaiting_integrate.retain(|&n| n != src);
                }
            }
            try_finish_phase(model, s, at);
        }
        Msg::AbsorbRequest { phase } => {
            let node = &mut s.nodes[dst as usize];
            node.role = AbsRole::Draining;
            node.phase = phase;
            node.in_phase = Some(phase);
            node.suspended = true;
            node.acked = false;
            node.anchor_hint = src;
        }
        Msg::AbsorbData { leaver } => {
            let at = dst;
            let anchor = s.anchor.as_mut().expect("hand-overs reach the absorber");
            if let Some(wait) = anchor.open_phase.as_mut() {
                wait.awaiting_absorb.retain(|&n| n != leaver);
            }
            try_finish_phase(model, s, at);
        }
        Msg::UpdateOver { phase } => {
            let node = &mut s.nodes[dst as usize];
            // The PR-3 guard: a delayed end-of-phase message from an *older*
            // phase must not cancel a younger phase the node has since
            // joined.  The `model-mutation` feature re-introduces the race
            // so the mutation-gate test can prove the checker finds it.
            #[cfg(not(feature = "model-mutation"))]
            if let Some(current) = node.in_phase {
                if current > phase {
                    return;
                }
            }
            let _ = phase;
            node.suspended = false;
            node.in_phase = None;
            node.acked = false;
            if matches!(node.role, AbsRole::Draining) {
                node.role = AbsRole::Left;
            }
        }
        Msg::AnchorTransfer { anchor } => {
            s.anchor = Some(anchor);
            s.anchor_at = Some(dst);
            let node = &mut s.nodes[dst as usize];
            node.is_anchor = true;
            node.forward_to = None;
            node.anchor_hint = dst;
        }
    }
}

/// Converts the abstract history into [`OpRecord`]s so the real
/// `skueue-verify` checkers (Definition 1 + sequential replay) run on it.
pub fn to_records(history: &[Completed]) -> Vec<OpRecord<u64>> {
    history
        .iter()
        .map(|c| {
            let id = RequestId::new(ProcessId(c.req.node as u64), c.req.seq as u64);
            let (kind, result) = if c.req.is_enqueue {
                (OpKind::Enqueue, OpResult::Enqueued)
            } else {
                match c.result {
                    AbsResult::Returned(n, s) => (
                        OpKind::Dequeue,
                        OpResult::Returned(RequestId::new(ProcessId(n as u64), s as u64)),
                    ),
                    _ => (OpKind::Dequeue, OpResult::Empty),
                }
            };
            OpRecord {
                id,
                kind,
                value: c.value as u64,
                result,
                order: OrderKey::anchor(c.order as u64, ProcessId(c.req.node as u64)),
                issued_round: 0,
                completed_round: 0,
            }
        })
        .collect()
}
