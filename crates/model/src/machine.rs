//! The generic transition-system abstraction the explorer walks.
//!
//! A [`Machine`] is an explicit-state transition system: an initial state, a
//! function enumerating the *enabled* actions of a state, and a deterministic
//! `apply`.  The protocol abstraction in [`crate::protocol`] implements it;
//! the explorer in [`mod@crate::explore`] is generic over it, so the Skeap/Seap
//! phase machinery (PAPERS.md) can reuse the same traversal later by
//! implementing this trait for its own state.

use std::fmt::Debug;

/// An explicit `{ State, Action }` transition system with a canonical state
/// encoding for deduplication.
pub trait Machine {
    /// One global state of the system.
    type State: Clone;
    /// One atomic transition (a message delivery, an internal step, a churn
    /// injection, ...).
    type Action: Clone + Debug + PartialEq;

    /// The initial state of the bounded scenario.
    fn initial(&self) -> Self::State;

    /// Appends every action enabled in `state` to `out` (deterministic
    /// order — the explorer's traversal, and therefore its counterexamples,
    /// must be reproducible).
    fn actions(&self, state: &Self::State, out: &mut Vec<Self::Action>);

    /// Applies `action` to `state`.  Must only be called with an action that
    /// [`Machine::actions`] currently enables.
    fn apply(&self, state: &Self::State, action: &Self::Action) -> Self::State;

    /// Writes a canonical byte encoding of `state` into `out` (cleared by
    /// the caller).  Two states are identical iff their encodings are —
    /// exact deduplication, no hash-collision risk.
    fn encode(&self, state: &Self::State, out: &mut Vec<u8>);
}

/// Replays an action trace from the initial state.  Returns `None` if some
/// action of the trace is not enabled when its turn comes (used by the
/// shrinker to discard infeasible candidate traces).
pub fn replay<M: Machine>(machine: &M, trace: &[M::Action]) -> Option<Vec<M::State>> {
    let mut states = Vec::with_capacity(trace.len() + 1);
    let mut state = machine.initial();
    let mut enabled = Vec::new();
    states.push(state.clone());
    for action in trace {
        enabled.clear();
        machine.actions(&state, &mut enabled);
        if !enabled.iter().any(|a| a == action) {
            return None;
        }
        state = machine.apply(&state, action);
        states.push(state.clone());
    }
    Some(states)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A counter that can increment up to a cap, or reset once.
    struct Counter;

    impl Machine for Counter {
        type State = (u8, bool);
        type Action = u8; // 0 = inc, 1 = reset

        fn initial(&self) -> Self::State {
            (0, false)
        }

        fn actions(&self, s: &Self::State, out: &mut Vec<u8>) {
            if s.0 < 3 {
                out.push(0);
            }
            if !s.1 {
                out.push(1);
            }
        }

        fn apply(&self, s: &Self::State, a: &u8) -> Self::State {
            match a {
                0 => (s.0 + 1, s.1),
                _ => (0, true),
            }
        }

        fn encode(&self, s: &Self::State, out: &mut Vec<u8>) {
            out.push(s.0);
            out.push(s.1 as u8);
        }
    }

    #[test]
    fn replay_follows_enabled_actions() {
        let states = replay(&Counter, &[0, 0, 1, 0]).expect("trace is feasible");
        assert_eq!(states.len(), 5);
        assert_eq!(states[4], (1, true));
    }

    #[test]
    fn replay_rejects_disabled_actions() {
        // A second reset is disabled.
        assert!(replay(&Counter, &[1, 1]).is_none());
        // Incrementing past the cap is disabled.
        assert!(replay(&Counter, &[0, 0, 0, 0]).is_none());
    }
}
