//! # skueue-model — exhaustive model checking of the protocol core
//!
//! The churn sweeps in `tests/` sample interleavings; this crate closes the
//! gap the ROADMAP names by checking *all* of them, for a bounded scenario:
//!
//! * [`protocol`] — a small-n abstraction of the join/leave/update phase
//!   machinery, wave pipelining and re-anchoring as an explicit
//!   `{ State, Action }` transition system ([`machine::Machine`]);
//! * [`mod@explore`] — deterministic BFS over every enabled-action
//!   interleaving, with exact state deduplication and safety checks at
//!   every state;
//! * [`props`] — the safety properties plus an LTL-ish combinator layer
//!   ([`props::always`], [`props::eventually`], [`props::leads_to`]) for
//!   liveness over the finished reachability graph, with Definition 1
//!   checked by the real `skueue-verify` checkers on terminal histories;
//! * [`shrink`] — ddmin-style counterexample minimisation and projection
//!   to a serialisable [`skueue_sim::replay::ReplayScenario`];
//! * [`conformance`] — lockstep validation of the abstraction against the
//!   real `skueue-core` cluster, and the replay harness the regression
//!   tests use to re-execute pinned counterexample scenarios.
//!
//! See `MODEL.md` at the repository root for the abstraction's scope, the
//! bound-coverage argument and how to extend the properties for the
//! Skeap/Seap companion protocol.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conformance;
pub mod explore;
pub mod machine;
pub mod props;
pub mod protocol;
pub mod shrink;

pub use conformance::{replay_on_cluster, run_conformance, ConformanceReport, ReplayReport};
pub use explore::{
    explore, reachable_exists, Counterexample, Exploration, ExploreConfig, SafetyProp,
};
pub use machine::{replay, Machine};
pub use props::{
    always, check_terminal_histories, eventually, leads_to, model_safety_props, no_cycles,
    quiescent,
};
pub use protocol::{Action, ModelState, ProtocolModel, Scenario};
pub use shrink::{shrink_to_scenario, shrink_trace, to_replay_scenario};
