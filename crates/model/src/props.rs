//! Safety and liveness properties of the abstract protocol.
//!
//! Safety properties run at every reachable state during exploration
//! ([`model_safety_props`]).  Liveness is expressed through a small LTL-ish
//! combinator layer over the finished reachability graph: [`always`],
//! [`eventually`] and [`leads_to`], plus [`no_cycles`] (the side condition
//! that makes `eventually` meaningful on a finite graph).  Definition 1
//! itself is checked with the real `skueue-verify` checkers on the abstract
//! history of every terminal state ([`check_terminal_histories`]).

use crate::explore::{Counterexample, Exploration, SafetyProp};
use crate::machine::Machine;
use crate::protocol::{to_records, AbsResult, AbsRole, ModelState, Msg};
use skueue_verify::check_queue_records;
use std::collections::HashMap;

/// The model's safety properties, checked at every state:
///
/// * **single-anchor** — exactly one anchor host (or none, with the anchor
///   state travelling in an `AnchorTransfer`);
/// * **anchor-invariant** — the position counter never rewinds below 1 and
///   the open phase always belongs to the current phase counter;
/// * **credit-serialized** — per child, at most one un-acked wave in flight,
///   and none while the child holds its credit;
/// * **no-duplicate-element** — no element is returned twice, no request
///   completes twice, no order position is used twice (shard/tag
///   discipline of the unsharded model: every key is an anchor key);
/// * **phase-monotonicity** — no node is ever ahead of the anchor's phase
///   counter.
pub fn model_safety_props() -> Vec<SafetyProp<ModelState>> {
    vec![
        SafetyProp::new("single-anchor", |s: &ModelState| {
            let hosts: Vec<usize> = s
                .nodes
                .iter()
                .enumerate()
                .filter(|(_, n)| n.is_anchor)
                .map(|(i, _)| i)
                .collect();
            let transfers = s
                .network
                .iter()
                .filter(|e| matches!(e.msg, Msg::AnchorTransfer { .. }))
                .count();
            match (s.anchor_at, s.anchor.is_some()) {
                (Some(at), true) if hosts == vec![at as usize] && transfers == 0 => None,
                (None, false) if hosts.is_empty() && transfers == 1 => None,
                _ => Some(format!(
                    "anchor_at={:?} hosts={hosts:?} transfers={transfers}",
                    s.anchor_at
                )),
            }
        }),
        SafetyProp::new("anchor-invariant", |s: &ModelState| {
            let anchor = s.anchor.as_ref().or_else(|| {
                s.network.iter().find_map(|e| match &e.msg {
                    Msg::AnchorTransfer { anchor } => Some(anchor),
                    _ => None,
                })
            })?;
            if anchor.counter < 1 {
                return Some(format!("counter rewound to {}", anchor.counter));
            }
            if let Some(wait) = &anchor.open_phase {
                if wait.phase != anchor.phases_started {
                    return Some(format!(
                        "open phase {} but {} phases started",
                        wait.phase, anchor.phases_started
                    ));
                }
            }
            None
        }),
        SafetyProp::new("credit-serialized", |s: &ModelState| {
            for (i, node) in s.nodes.iter().enumerate() {
                let in_flight = s
                    .network
                    .iter()
                    .filter(|e| {
                        matches!(&e.msg, Msg::Aggregate { from, .. } if *from == i as u8)
                            || (e.dst == i as u8 && matches!(e.msg, Msg::AggregateAck))
                    })
                    .count();
                if in_flight > 1 {
                    return Some(format!("node {i}: {in_flight} un-acked waves in flight"));
                }
                if node.credit && in_flight != 0 {
                    return Some(format!("node {i}: credit held with a wave in flight"));
                }
            }
            None
        }),
        SafetyProp::new("no-duplicate-element", |s: &ModelState| {
            let mut completed = HashMap::new();
            let mut returned = HashMap::new();
            let mut orders = HashMap::new();
            for c in &s.history {
                if let Some(prev) = completed.insert((c.req.node, c.req.seq), c) {
                    return Some(format!("request {:?} completed twice ({prev:?})", c.req));
                }
                if let Some(prev) = orders.insert(c.order, c.req) {
                    return Some(format!(
                        "order {} used by {:?} and {prev:?}",
                        c.order, c.req
                    ));
                }
                if let AbsResult::Returned(n, q) = c.result {
                    if let Some(prev) = returned.insert((n, q), c.req) {
                        return Some(format!(
                            "element of ({n},{q}) returned to both {prev:?} and {:?}",
                            c.req
                        ));
                    }
                }
            }
            None
        }),
        SafetyProp::new("phase-monotonicity", |s: &ModelState| {
            let started = s.anchor.as_ref().map(|a| a.phases_started).or_else(|| {
                s.network.iter().find_map(|e| match &e.msg {
                    Msg::AnchorTransfer { anchor } => Some(anchor.phases_started),
                    _ => None,
                })
            })?;
            for (i, node) in s.nodes.iter().enumerate() {
                if node.phase > started {
                    return Some(format!(
                        "node {i} reached phase {} but only {started} started",
                        node.phase
                    ));
                }
                if let Some(p) = node.in_phase {
                    if p > node.phase {
                        return Some(format!("node {i}: in_phase {p} > phase {}", node.phase));
                    }
                }
            }
            None
        }),
    ]
}

/// Full quiescence: nothing in flight, no phase open, no churn pending, no
/// node mid-membership-change, and every issued request completed.
pub fn quiescent(s: &ModelState) -> bool {
    let issued: usize = s.nodes.iter().map(|n| n.issued as usize).sum();
    s.network.is_empty()
        && s.anchor
            .as_ref()
            .is_some_and(|a| a.open_phase.is_none() && a.pending_churn == 0)
        && s.history.len() == issued
        && s.nodes.iter().all(|n| {
            !n.suspended
                && n.in_phase.is_none()
                && n.pending.is_empty()
                && !matches!(n.role, AbsRole::Joining | AbsRole::Draining)
        })
}

/// `always p`: `p` holds in every reachable state.
pub fn always<M: Machine>(
    ex: &Exploration<M>,
    name: &'static str,
    pred: impl Fn(&M::State) -> bool,
) -> Result<(), Counterexample<M::Action>> {
    for (id, state) in ex.states.iter().enumerate() {
        if !pred(state) {
            return Err(Counterexample {
                property: name.to_string(),
                detail: "predicate fails in a reachable state".to_string(),
                trace: ex.trace_to(id as u32),
            });
        }
    }
    Ok(())
}

/// The reachability graph must be acyclic — on a finite graph this is what
/// turns "every maximal path is finite and ends in a terminal state" into a
/// checkable side condition for [`eventually`] and [`leads_to`].
pub fn no_cycles<M: Machine>(ex: &Exploration<M>) -> Result<(), Counterexample<M::Action>> {
    // Iterative 3-colour DFS.
    let n = ex.states.len();
    let mut colour = vec![0u8; n]; // 0 = white, 1 = grey, 2 = black
    for root in 0..n {
        if colour[root] != 0 {
            continue;
        }
        let mut stack: Vec<(u32, usize)> = vec![(root as u32, 0)];
        colour[root] = 1;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let succs = &ex.succs[node as usize];
            if *next < succs.len() {
                let (child, _) = succs[*next];
                *next += 1;
                match colour[child as usize] {
                    0 => {
                        colour[child as usize] = 1;
                        stack.push((child, 0));
                    }
                    1 => {
                        return Err(Counterexample {
                            property: "no-cycles".to_string(),
                            detail: format!("cycle back to state {child} (livelock)"),
                            trace: ex.trace_to(child),
                        });
                    }
                    _ => {}
                }
            } else {
                colour[node as usize] = 2;
                stack.pop();
            }
        }
    }
    Ok(())
}

/// `eventually p` over all maximal paths: with an acyclic graph this is
/// exactly "every terminal state satisfies `p`".
pub fn eventually<M: Machine>(
    ex: &Exploration<M>,
    name: &'static str,
    pred: impl Fn(&M::State) -> bool,
) -> Result<(), Counterexample<M::Action>> {
    no_cycles(ex)?;
    for &t in &ex.terminals {
        if !pred(&ex.states[t as usize]) {
            return Err(Counterexample {
                property: name.to_string(),
                detail: "a maximal path ends without reaching the predicate".to_string(),
                trace: ex.trace_to(t),
            });
        }
    }
    Ok(())
}

/// `p leads_to q`: from every state satisfying `p`, *all* paths reach a
/// state satisfying `q`.
pub fn leads_to<M: Machine>(
    ex: &Exploration<M>,
    name: &'static str,
    p: impl Fn(&M::State) -> bool,
    q: impl Fn(&M::State) -> bool,
) -> Result<(), Counterexample<M::Action>> {
    no_cycles(ex)?;
    let n = ex.states.len();
    // `reaches[s]`: every path from s hits a q-state.  Computed in reverse
    // topological order (post-order DFS).
    let order = topo_postorder(ex);
    let mut reaches = vec![false; n];
    for &s in &order {
        let su = s as usize;
        reaches[su] = q(&ex.states[su])
            || (!ex.succs[su].is_empty() && ex.succs[su].iter().all(|&(c, _)| reaches[c as usize]));
    }
    for s in 0..n {
        if p(&ex.states[s]) && !reaches[s] {
            // Extend the trace along a failing path to a terminal, for a
            // complete counterexample.
            let mut trace = ex.trace_to(s as u32);
            let mut cur = s;
            while let Some(&(c, ref a)) = ex.succs[cur].iter().find(|&&(c, _)| !reaches[c as usize])
            {
                trace.push(a.clone());
                cur = c as usize;
            }
            return Err(Counterexample {
                property: name.to_string(),
                detail: "a path from a p-state never reaches q".to_string(),
                trace,
            });
        }
    }
    Ok(())
}

/// Post-order DFS over the (acyclic) graph: children before parents.
fn topo_postorder<M: Machine>(ex: &Exploration<M>) -> Vec<u32> {
    let n = ex.states.len();
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for root in 0..n {
        if visited[root] {
            continue;
        }
        let mut stack: Vec<(u32, usize)> = vec![(root as u32, 0)];
        visited[root] = true;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let succs = &ex.succs[node as usize];
            if *next < succs.len() {
                let (child, _) = succs[*next];
                *next += 1;
                if !visited[child as usize] {
                    visited[child as usize] = true;
                    stack.push((child, 0));
                }
            } else {
                order.push(node);
                stack.pop();
            }
        }
    }
    order
}

/// Runs the real `skueue-verify` queue checkers (Definition 1 + sequential
/// replay) on the abstract history of every terminal state.
pub fn check_terminal_histories<M: Machine<State = ModelState>>(
    ex: &Exploration<M>,
) -> Result<(), Counterexample<M::Action>> {
    for &t in &ex.terminals {
        let records = to_records(&ex.states[t as usize].history);
        let report = check_queue_records(records);
        if !report.is_consistent() {
            return Err(Counterexample {
                property: "definition-1".to_string(),
                detail: format!("{report}"),
                trace: ex.trace_to(t),
            });
        }
    }
    Ok(())
}
