//! Exhaustive bounded exploration of a [`Machine`].
//!
//! Deterministic breadth-first traversal over *all* enabled-action
//! interleavings, with exact state deduplication (full canonical encodings,
//! not hashes — two states merge iff their encodings are byte-identical).
//! Safety properties are evaluated at every state as it is discovered; the
//! first violation stops the search and yields the action trace that reaches
//! it.  The full reachability graph (successor lists, terminal states) is
//! kept so the liveness combinators in [`crate::props`] can run over it
//! afterwards.

use crate::machine::Machine;
use std::collections::HashMap;
use std::fmt::Write as _;

/// A named safety property, checked at every reachable state.  Returns
/// `Some(description)` when the state violates it.
pub struct SafetyProp<S> {
    /// Property name (shows up in the counterexample report).
    pub name: &'static str,
    /// The check itself.
    #[allow(clippy::type_complexity)]
    pub check: Box<dyn Fn(&S) -> Option<String>>,
}

impl<S> SafetyProp<S> {
    /// Builds a named property from a closure.
    pub fn new(name: &'static str, check: impl Fn(&S) -> Option<String> + 'static) -> Self {
        SafetyProp {
            name,
            check: Box::new(check),
        }
    }
}

/// A property violation, with the action trace that reaches it from the
/// initial state.
#[derive(Debug, Clone)]
pub struct Counterexample<A> {
    /// Which property failed.
    pub property: String,
    /// What the check reported.
    pub detail: String,
    /// Actions from the initial state to the violating state.
    pub trace: Vec<A>,
}

impl<A: std::fmt::Display> Counterexample<A> {
    /// Human-readable rendering of the trace (one action per line).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "property `{}` violated: {}",
            self.property, self.detail
        );
        let _ = writeln!(out, "trace ({} actions):", self.trace.len());
        for (i, a) in self.trace.iter().enumerate() {
            let _ = writeln!(out, "  {i:3}. {a}");
        }
        out
    }
}

/// Exploration bounds.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Hard cap on distinct states; exceeding it marks the result truncated
    /// (a truncated run proves nothing and fails the bounded tests).
    pub max_states: usize,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_states: 4_000_000,
        }
    }
}

/// The explored reachability graph.
pub struct Exploration<M: Machine> {
    /// Every distinct reachable state, indexed by discovery order (0 = the
    /// initial state).
    pub states: Vec<M::State>,
    /// BFS predecessor + the action that reached each state (`None` for the
    /// initial state) — counterexample traces are read off this.
    pub parents: Vec<Option<(u32, M::Action)>>,
    /// Successor lists with their action labels.
    pub succs: Vec<Vec<(u32, M::Action)>>,
    /// States with no enabled action.
    pub terminals: Vec<u32>,
    /// Number of distinct states discovered.
    pub states_explored: usize,
    /// Total transitions taken (size of the edge relation).
    pub transitions: usize,
    /// True when `max_states` was hit before the frontier emptied.
    pub truncated: bool,
    /// First safety violation found, if any (the graph past it is partial).
    pub violation: Option<Counterexample<M::Action>>,
}

impl<M: Machine> Exploration<M> {
    /// The action trace from the initial state to `state_id`.
    pub fn trace_to(&self, state_id: u32) -> Vec<M::Action> {
        let mut trace = Vec::new();
        let mut cur = state_id;
        while let Some((parent, action)) = &self.parents[cur as usize] {
            trace.push(action.clone());
            cur = *parent;
        }
        trace.reverse();
        trace
    }
}

/// Runs the exhaustive BFS.  Deterministic: same machine + config ⇒ same
/// discovery order, same counterexample.
pub fn explore<M: Machine>(
    machine: &M,
    safety: &[SafetyProp<M::State>],
    config: &ExploreConfig,
) -> Exploration<M> {
    let mut states: Vec<M::State> = Vec::new();
    let mut parents: Vec<Option<(u32, M::Action)>> = Vec::new();
    let mut succs: Vec<Vec<(u32, M::Action)>> = Vec::new();
    let mut terminals: Vec<u32> = Vec::new();
    let mut seen: HashMap<Box<[u8]>, u32> = HashMap::new();
    let mut transitions = 0usize;
    let mut truncated = false;
    let mut violation = None;

    let mut enc = Vec::new();
    let initial = machine.initial();
    machine.encode(&initial, &mut enc);
    seen.insert(enc.clone().into_boxed_slice(), 0);
    states.push(initial);
    parents.push(None);
    succs.push(Vec::new());

    // Check safety on the initial state too.
    if let Some(cex) = check_state(machine, safety, &states[0], 0, &parents, &states) {
        violation = Some(cex);
    }

    let mut frontier = 0usize;
    let mut enabled = Vec::new();
    'bfs: while frontier < states.len() && violation.is_none() {
        let id = frontier as u32;
        enabled.clear();
        machine.actions(&states[frontier], &mut enabled);
        if enabled.is_empty() {
            terminals.push(id);
        }
        let actions = std::mem::take(&mut enabled);
        for action in &actions {
            let next = machine.apply(&states[frontier], action);
            transitions += 1;
            enc.clear();
            machine.encode(&next, &mut enc);
            let next_id = match seen.get(enc.as_slice()) {
                Some(&existing) => existing,
                None => {
                    if states.len() >= config.max_states {
                        truncated = true;
                        break 'bfs;
                    }
                    let new_id = states.len() as u32;
                    seen.insert(enc.clone().into_boxed_slice(), new_id);
                    parents.push(Some((id, action.clone())));
                    succs.push(Vec::new());
                    states.push(next);
                    if let Some(cex) = check_state(
                        machine,
                        safety,
                        &states[new_id as usize],
                        new_id,
                        &parents,
                        &states,
                    ) {
                        violation = Some(cex);
                        succs[frontier].push((new_id, action.clone()));
                        break 'bfs;
                    }
                    new_id
                }
            };
            succs[frontier].push((next_id, action.clone()));
        }
        enabled = actions;
        frontier += 1;
    }

    let states_explored = states.len();
    Exploration {
        states,
        parents,
        succs,
        terminals,
        states_explored,
        transitions,
        truncated,
        violation,
    }
}

/// Bounded existence check: is a state satisfying `pred` reachable from
/// `from`?  `pred` also receives whether the state is terminal (no enabled
/// action), so callers can ask for "a stuck terminal" specifically.  Hitting
/// `max_states` without a witness answers `false` — for shrinking, a
/// cap-limited candidate counts as *not* failing, which only keeps the
/// minimised trace conservative (never unsound).
pub fn reachable_exists<M: Machine>(
    machine: &M,
    from: &M::State,
    pred: impl Fn(&M::State, bool) -> bool,
    max_states: usize,
) -> bool {
    let mut seen: HashMap<Box<[u8]>, ()> = HashMap::new();
    let mut queue: Vec<M::State> = Vec::new();
    let mut enc = Vec::new();
    machine.encode(from, &mut enc);
    seen.insert(enc.clone().into_boxed_slice(), ());
    queue.push(from.clone());

    let mut frontier = 0usize;
    let mut enabled = Vec::new();
    while frontier < queue.len() {
        enabled.clear();
        machine.actions(&queue[frontier], &mut enabled);
        if pred(&queue[frontier], enabled.is_empty()) {
            return true;
        }
        let actions = std::mem::take(&mut enabled);
        for action in &actions {
            let next = machine.apply(&queue[frontier], action);
            enc.clear();
            machine.encode(&next, &mut enc);
            if !seen.contains_key(enc.as_slice()) {
                if queue.len() >= max_states {
                    return false;
                }
                seen.insert(enc.clone().into_boxed_slice(), ());
                queue.push(next);
            }
        }
        enabled = actions;
        frontier += 1;
    }
    false
}

fn check_state<M: Machine>(
    _machine: &M,
    safety: &[SafetyProp<M::State>],
    state: &M::State,
    id: u32,
    parents: &[Option<(u32, M::Action)>],
    _states: &[M::State],
) -> Option<Counterexample<M::Action>> {
    for prop in safety {
        if let Some(detail) = (prop.check)(state) {
            let mut trace = Vec::new();
            let mut cur = id;
            while let Some((parent, action)) = &parents[cur as usize] {
                trace.push(action.clone());
                cur = *parent;
            }
            trace.reverse();
            return Some(Counterexample {
                property: prop.name.to_string(),
                detail,
                trace,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;

    /// Two tokens that can each flip once: 4 states, diamond-shaped.
    struct Diamond;

    impl Machine for Diamond {
        type State = (bool, bool);
        type Action = u8;

        fn initial(&self) -> Self::State {
            (false, false)
        }

        fn actions(&self, s: &Self::State, out: &mut Vec<u8>) {
            if !s.0 {
                out.push(0);
            }
            if !s.1 {
                out.push(1);
            }
        }

        fn apply(&self, s: &Self::State, a: &u8) -> Self::State {
            match a {
                0 => (true, s.1),
                _ => (s.0, true),
            }
        }

        fn encode(&self, s: &Self::State, out: &mut Vec<u8>) {
            out.push(s.0 as u8);
            out.push(s.1 as u8);
        }
    }

    #[test]
    fn diamond_dedups_to_four_states() {
        let ex = explore(&Diamond, &[], &ExploreConfig::default());
        assert_eq!(ex.states_explored, 4);
        assert_eq!(ex.transitions, 4);
        assert_eq!(ex.terminals, vec![3]);
        assert!(!ex.truncated);
        assert!(ex.violation.is_none());
    }

    #[test]
    fn safety_violation_yields_shortest_trace() {
        let prop = SafetyProp::new("no-both", |s: &(bool, bool)| {
            (s.0 && s.1).then(|| "both flipped".to_string())
        });
        let ex = explore(&Diamond, &[prop], &ExploreConfig::default());
        let cex = ex.violation.expect("both-flipped is reachable");
        assert_eq!(cex.trace.len(), 2, "BFS finds a shortest counterexample");
    }

    #[test]
    fn state_cap_marks_truncation() {
        let ex = explore(&Diamond, &[], &ExploreConfig { max_states: 2 });
        assert!(ex.truncated);
    }

    #[test]
    fn reachable_exists_finds_terminal_and_respects_cap() {
        let both = |s: &(bool, bool), terminal: bool| terminal && s.0 && s.1;
        assert!(reachable_exists(&Diamond, &(false, false), both, 100));
        assert!(!reachable_exists(
            &Diamond,
            &(false, false),
            |_, _| false,
            100
        ));
        // A cap too small to reach the witness answers `false`.
        assert!(!reachable_exists(&Diamond, &(false, false), both, 2));
    }
}
