//! Counterexample shrinking.
//!
//! A raw counterexample trace from the explorer contains incidental actions
//! (unrelated issues, deliveries on other channels).  [`shrink_trace`] is a
//! ddmin-style minimiser: it repeatedly deletes chunks (halving the chunk
//! size down to single actions) and keeps a candidate iff it still replays
//! feasibly *and* still exhibits the failure, until no single deletion
//! helps.  [`to_replay_scenario`] then projects the minimal trace onto its
//! high-level steps as a [`ReplayScenario`] that the regression tests
//! re-execute against the real `skueue-core` cluster.

use crate::machine::{replay, Machine};
use crate::protocol::{Action, ProtocolModel, Scenario};
use skueue_sim::replay::{ReplayScenario, ReplayStep};

/// Minimises `trace` with respect to `still_fails` (which must hold for the
/// input trace).  `still_fails` receives candidate traces that are already
/// known to replay feasibly from the initial state.
pub fn shrink_trace<M: Machine>(
    machine: &M,
    trace: &[M::Action],
    still_fails: impl Fn(&[M::Action]) -> bool,
) -> Vec<M::Action> {
    let mut current = trace.to_vec();
    loop {
        let mut improved = false;
        let mut size = (current.len() / 2).max(1);
        loop {
            let mut start = 0;
            while start + size <= current.len() {
                let mut candidate = current.clone();
                candidate.drain(start..start + size);
                let feasible = replay(machine, &candidate).is_some();
                if feasible && still_fails(&candidate) {
                    current = candidate;
                    improved = true;
                    // Re-scan from the same offset: the window now holds
                    // different actions.
                } else {
                    start += size;
                }
            }
            if size == 1 {
                break;
            }
            size /= 2;
        }
        if !improved {
            break;
        }
    }
    current
}

/// Projects a model trace onto its scenario-level steps: the request
/// issues and churn injections, in trace order, as a serialisable
/// [`ReplayScenario`].  Message-delivery choices do not exist at the real
/// cluster's API surface; the replay harness re-creates adversarial
/// delivery by sweeping the scenario over asynchronous-delivery seeds.
pub fn to_replay_scenario(scenario: &Scenario, trace: &[Action], seed: u64) -> ReplayScenario {
    let mut steps = Vec::new();
    let mut issued = vec![0u8; scenario.node_count()];
    let mut leaves = 0usize;
    for action in trace {
        match *action {
            Action::Issue(n) => {
                let idx = issued[n as usize];
                issued[n as usize] += 1;
                let is_enqueue = scenario
                    .script
                    .iter()
                    .filter(|(node, _)| *node == n)
                    .nth(idx as usize)
                    .map(|(_, e)| *e)
                    .expect("trace issues follow the script");
                steps.push(if is_enqueue {
                    ReplayStep::Enqueue(n as u64)
                } else {
                    ReplayStep::Dequeue(n as u64)
                });
            }
            Action::InjectJoin => {
                steps.push(ReplayStep::Join);
            }
            Action::InjectLeave => {
                let l = scenario.leaves[leaves];
                leaves += 1;
                steps.push(ReplayStep::Leave(l as u64));
            }
            // Waves, acks and deliveries happen below the cluster API.
            _ => {}
        }
    }
    ReplayScenario {
        processes: scenario.initial_nodes as u64,
        seed,
        max_delay: scenario.reorder_window.max(2) as u64,
        steps,
    }
}

/// Convenience: shrink a trace of the protocol model and serialise it.
pub fn shrink_to_scenario(
    model: &ProtocolModel,
    trace: &[Action],
    still_fails: impl Fn(&[Action]) -> bool,
    seed: u64,
) -> (Vec<Action>, ReplayScenario) {
    let minimal = shrink_trace(model, trace, still_fails);
    let scenario = to_replay_scenario(&model.scenario, &minimal, seed);
    (minimal, scenario)
}
