//! Conformance: validating the abstraction against the real protocol.
//!
//! Two entry points:
//!
//! * [`run_conformance`] drives the abstract model and a real
//!   `skueue-core` cluster in lockstep over sampled scenario traces.  After
//!   every step both sides run to quiescence and their state projections —
//!   queue length, active membership, phases started, and the step's
//!   request outcome — must agree.  This is what licenses trusting the
//!   model's verdicts about the implementation.
//! * [`replay_on_cluster`] re-executes a serialised [`ReplayScenario`]
//!   (e.g. a shrunk counterexample) against the real cluster under the sim
//!   scheduler and checks exactly-once completion plus Definition 1.

use crate::machine::Machine;
use crate::protocol::{AbsResult, AbsRole, Action, ModelState, ProtocolModel, Scenario};
use skueue_core::{Skueue, SkueueCluster};
use skueue_sim::ids::ProcessId;
use skueue_sim::replay::{ReplayScenario, ReplayStep};
use skueue_sim::SimRng;
use skueue_verify::{check_queue, History, OpResult};
use std::collections::HashSet;

/// Outcome of a conformance run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConformanceReport {
    /// Sampled traces driven in lockstep.
    pub traces: usize,
    /// Individual steps on which the projections were compared.
    pub steps_compared: usize,
}

/// Drives the model deterministically: applies the given scenario-level
/// action, then quiesces by repeatedly applying the first enabled internal
/// action (never an `Issue` or churn injection — those are the scenario's).
struct ModelDriver {
    model: ProtocolModel,
    state: ModelState,
}

impl ModelDriver {
    fn new(scenario: Scenario) -> Self {
        let model = ProtocolModel::new(scenario);
        let state = model.initial();
        ModelDriver { model, state }
    }

    fn apply(&mut self, action: Action) -> Result<(), String> {
        let mut enabled = Vec::new();
        self.model.actions(&self.state, &mut enabled);
        if !enabled.contains(&action) {
            return Err(format!("model action {action} not enabled"));
        }
        self.state = self.model.apply(&self.state, &action);
        Ok(())
    }

    fn quiesce(&mut self) {
        let mut enabled = Vec::new();
        loop {
            enabled.clear();
            self.model.actions(&self.state, &mut enabled);
            let Some(action) = enabled.iter().find(|a| {
                !matches!(
                    a,
                    Action::Issue(_) | Action::InjectJoin | Action::InjectLeave
                )
            }) else {
                return;
            };
            self.state = self.model.apply(&self.state, action);
        }
    }

    /// The completed record of request `(node, seq)`, if present.
    fn outcome_of(&self, node: u8, seq: u8) -> Option<(bool, u64)> {
        self.state
            .history
            .iter()
            .find(|c| c.req.node == node && c.req.seq == seq)
            .map(|c| (matches!(c.result, AbsResult::Empty), c.value as u64))
    }

    fn active_members(&self) -> usize {
        self.state
            .nodes
            .iter()
            .filter(|n| matches!(n.role, AbsRole::Active))
            .count()
    }

    fn queue_len(&self) -> u64 {
        self.state
            .anchor
            .as_ref()
            .map_or(0, |a| a.queue.len() as u64)
    }

    fn phases_started(&self) -> u64 {
        self.state
            .anchor
            .as_ref()
            .map_or(0, |a| a.phases_started as u64)
    }
}

/// Maps model node ids to real process ids.  Model node 0 is the anchor by
/// construction, so it maps to whichever real process hosts the anchor;
/// the remaining initial processes follow in ascending id order.
fn build_mapping(cluster: &SkueueCluster<u64>, initial: usize) -> Result<Vec<ProcessId>, String> {
    let anchor_process = cluster
        .nodes()
        .find(|(_, n)| n.is_anchor_node())
        .map(|(_, n)| n.process())
        .ok_or("cluster has no anchor")?;
    let mut mapping = vec![anchor_process];
    for p in 0..initial as u64 {
        let pid = ProcessId(p);
        if pid != anchor_process {
            mapping.push(pid);
        }
    }
    Ok(mapping)
}

/// One sampled lockstep trace.  Returns the number of steps compared.
fn run_one_trace(sample: u64) -> Result<usize, String> {
    let mut rng = SimRng::new(sample.wrapping_mul(0x9E3779B97F4A7C15) ^ 0x5EED);
    // Sample a scenario: 5–8 steps over 3 members, ≤ 1 join (node 3) and
    // ≤ 1 leave (node 1 or 2), requests at whoever is an active member.
    let steps = 5 + rng.gen_range(4) as usize;
    let leave_target = 1 + rng.gen_range(2) as u8;
    let mut script = Vec::new();
    let mut plan: Vec<(u8, u8)> = Vec::new(); // (kind: 0 enq / 1 deq / 2 join / 3 leave, node)
    let mut joined = false;
    let mut left = false;
    for _ in 0..steps {
        let roll = rng.gen_range(10);
        if roll == 0 && !joined {
            joined = true;
            plan.push((2, 3));
        } else if roll == 1 && !left {
            left = true;
            plan.push((3, leave_target));
        } else {
            let mut candidates: Vec<u8> = vec![0, 1, 2];
            if joined {
                candidates.push(3);
            }
            if left {
                candidates.retain(|&n| n != leave_target);
            }
            let node = candidates[rng.gen_range(candidates.len() as u64) as usize];
            let is_enqueue = rng.gen_bool(0.6);
            plan.push((u8::from(!is_enqueue), node));
            script.push((node, is_enqueue));
        }
    }

    let scenario = Scenario {
        initial_nodes: 3,
        script,
        joins: if joined { vec![3] } else { vec![] },
        leaves: if left { vec![leave_target] } else { vec![] },
        reorder_window: 1,
        reanchor_to: None,
    };
    let mut driver = ModelDriver::new(scenario);

    let mut cluster: SkueueCluster<u64> = Skueue::builder()
        .processes(3)
        .seed(sample ^ 0xC0FFEE)
        .build()
        .map_err(|e| e.to_string())?;
    let mut mapping = build_mapping(&cluster, 3)?;

    let mut seqs = [0u8; 4];
    let mut compared = 0usize;
    for &(kind, node) in &plan {
        match kind {
            0 | 1 => {
                let seq = seqs[node as usize];
                seqs[node as usize] += 1;
                driver.apply(Action::Issue(node))?;
                // The model assigns enqueue payloads from its own counter;
                // replicate the exact value on the real cluster.
                let value = driver.state.nodes[node as usize]
                    .pending
                    .last()
                    .map(|r| r.value as u64)
                    .ok_or("issued request must be pending")?;
                driver.quiesce();
                let pid = mapping[node as usize];
                let ticket = if kind == 0 {
                    cluster.client(pid).enqueue(value)
                } else {
                    cluster.client(pid).dequeue()
                }
                .map_err(|e| e.to_string())?;
                let outcomes = cluster
                    .run_until_done(&[ticket], 20_000)
                    .map_err(|e| e.to_string())?;
                let real = &outcomes[0];
                let (model_empty, model_value) = driver
                    .outcome_of(node, seq)
                    .ok_or("model request did not complete at quiescence")?;
                if kind == 1 {
                    if real.is_empty() != model_empty {
                        return Err(format!(
                            "trace {sample}: dequeue at {node}: model empty={model_empty}, real empty={}",
                            real.is_empty()
                        ));
                    }
                    if !model_empty && real.value() != Some(model_value) {
                        return Err(format!(
                            "trace {sample}: dequeue at {node}: model value {model_value}, real {:?}",
                            real.value()
                        ));
                    }
                }
            }
            2 => {
                driver.apply(Action::InjectJoin)?;
                driver.quiesce();
                let pid = cluster.join(None).map_err(|e| e.to_string())?;
                cluster
                    .run_until(|c| c.process_is_active(pid), 50_000)
                    .map_err(|e| e.to_string())?;
                mapping.push(pid);
            }
            _ => {
                driver.apply(Action::InjectLeave)?;
                driver.quiesce();
                let pid = mapping[node as usize];
                cluster.leave(pid).map_err(|e| e.to_string())?;
                cluster
                    .run_until(|c| c.process_has_left(pid), 50_000)
                    .map_err(|e| e.to_string())?;
            }
        }
        // Let in-flight completions and membership ripples settle before
        // projecting.
        cluster.run_rounds(40);

        // State-projection agreement.
        let real_active = cluster.active_process_ids().len();
        let model_active = driver.active_members();
        if real_active != model_active {
            return Err(format!(
                "trace {sample}: membership projection: model {model_active}, real {real_active}"
            ));
        }
        let real_len = cluster.anchor_state().map(|a| a.size()).unwrap_or(0);
        let model_len = driver.queue_len();
        if real_len != model_len {
            return Err(format!(
                "trace {sample}: queue-length projection: model {model_len}, real {real_len}"
            ));
        }
        // Phase counts cannot agree exactly: one *process* join/leave in the
        // model is three *virtual-node* membership changes in the real
        // cluster, which may spread over several update phases.  The
        // projection is directional instead: the abstraction never needs
        // more phases than the implementation, and churn started a phase on
        // one side iff it did on the other.
        let real_phases = cluster
            .anchor_state()
            .map(|a| a.phases_started)
            .unwrap_or(0);
        let model_phases = driver.phases_started();
        if model_phases > real_phases {
            return Err(format!(
                "trace {sample}: phase projection: model started {model_phases} phases, real only {real_phases}"
            ));
        }
        if (model_phases > 0) != (real_phases > 0) {
            return Err(format!(
                "trace {sample}: phase projection: model {model_phases} vs real {real_phases} (churn must start a phase on both sides)"
            ));
        }
        compared += 1;
    }
    Ok(compared)
}

/// Runs `samples` sampled lockstep traces.  Errors out on the first
/// projection disagreement.
pub fn run_conformance(samples: usize) -> Result<ConformanceReport, String> {
    let mut steps_compared = 0;
    for sample in 0..samples as u64 {
        steps_compared += run_one_trace(sample)?;
    }
    Ok(ConformanceReport {
        traces: samples,
        steps_compared,
    })
}

/// Result of replaying a scenario against the real cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayReport {
    /// Requests issued (and completed exactly once).
    pub requests: u64,
    /// DHT replies that arrived for unknown requests (must be 0 at
    /// quiescence).
    pub unmatched_dht_replies: u64,
}

/// Replays a serialised scenario against a real cluster and checks
/// exactly-once completion, `unmatched_dht_replies == 0` and Definition 1.
pub fn replay_on_cluster(scenario: &ReplayScenario) -> Result<ReplayReport, String> {
    let mut builder = Skueue::<u64>::builder()
        .processes(scenario.processes as usize)
        .seed(scenario.seed);
    if scenario.max_delay > 0 {
        builder = builder.asynchronous(scenario.max_delay);
    }
    let mut cluster = builder.build().map_err(|e| e.to_string())?;
    let mut mapping = build_mapping(&cluster, scenario.processes as usize)?;

    let mut issued = 0u64;
    let mut value = 0u64;
    for step in &scenario.steps {
        match *step {
            ReplayStep::Enqueue(p) => {
                let pid = *mapping
                    .get(p as usize)
                    .ok_or_else(|| format!("step names unknown node {p}"))?;
                value += 1;
                cluster
                    .client(pid)
                    .enqueue(value)
                    .map_err(|e| e.to_string())?;
                issued += 1;
            }
            ReplayStep::Dequeue(p) => {
                let pid = *mapping
                    .get(p as usize)
                    .ok_or_else(|| format!("step names unknown node {p}"))?;
                cluster.client(pid).dequeue().map_err(|e| e.to_string())?;
                issued += 1;
            }
            ReplayStep::Join => {
                let pid = cluster.join(None).map_err(|e| e.to_string())?;
                mapping.push(pid);
            }
            ReplayStep::Leave(p) => {
                let pid = *mapping
                    .get(p as usize)
                    .ok_or_else(|| format!("step names unknown node {p}"))?;
                // Under adversarial delivery the leave gate may not be open
                // yet; give the protocol rounds to settle, then insist.
                let mut granted = false;
                for _ in 0..200 {
                    if cluster.leave(pid).is_ok() {
                        granted = true;
                        break;
                    }
                    cluster.run_rounds(5);
                }
                if !granted {
                    return Err(format!("leave of node {p} never granted"));
                }
            }
            ReplayStep::Rounds(k) => {
                cluster.run_rounds(k);
            }
        }
        cluster.run_round();
    }
    cluster
        .run_until_all_complete(60_000)
        .map_err(|e| e.to_string())?;
    cluster.run_rounds(60);

    let unmatched = cluster.unmatched_dht_replies();
    if unmatched != 0 {
        return Err(format!("{unmatched} unmatched DHT replies at quiescence"));
    }
    let records = cluster.into_history().into_records();
    if records.len() as u64 != issued {
        return Err(format!("{} of {issued} requests completed", records.len()));
    }
    let mut seen = HashSet::new();
    let mut returned = HashSet::new();
    for r in &records {
        if !seen.insert(r.id) {
            return Err(format!("request {} completed twice", r.id));
        }
        if let OpResult::Returned(source) = r.result {
            if !returned.insert(source) {
                return Err(format!("element of {source} returned twice"));
            }
        }
    }
    let history = History::from_records(records);
    let report = check_queue(&history);
    if !report.is_consistent() {
        return Err(format!("history inconsistent: {report}"));
    }
    Ok(ReplayReport {
        requests: issued,
        unmatched_dht_replies: unmatched,
    })
}
