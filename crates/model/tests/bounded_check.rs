//! The exhaustive bounded model check CI runs on every push.
//!
//! `bounded_model_check_is_exhaustive_and_clean` is the `timeout 120`-bounded
//! CI instance; `full_model_check` (behind `SKUEUE_MODEL_FULL=1` and
//! `-- --ignored`) widens the scenario to 5 nodes / 2 leaves / window 3.

#![cfg(not(feature = "model-mutation"))]

use skueue_model::{
    check_terminal_histories, eventually, explore, leads_to, model_safety_props, quiescent,
    ExploreConfig, ProtocolModel, Scenario,
};

fn run_scenario(name: &str, scenario: Scenario) {
    let model = ProtocolModel::new(scenario);
    let ex = explore(&model, &model_safety_props(), &ExploreConfig::default());
    println!(
        "model-check[{name}]: {} states, {} transitions, {} terminal states",
        ex.states_explored,
        ex.transitions,
        ex.terminals.len()
    );
    assert!(!ex.truncated, "{name}: exploration hit the state cap");
    if let Some(cex) = &ex.violation {
        panic!("{name}: safety violation\n{}", cex.render());
    }

    // Definition 1 (via the real skueue-verify checkers) on every complete
    // abstract history.
    if let Err(cex) = check_terminal_histories(&ex) {
        panic!("{name}: {}", cex.render());
    }

    // Liveness over the reachability graph: every path quiesces (no
    // stranded joiner, no wedged phase, every request completes), and
    // every started phase terminates on every path.
    if let Err(cex) = eventually(&ex, "eventually-quiescent", quiescent) {
        panic!("{name}: {}", cex.render());
    }
    if let Err(cex) = leads_to(
        &ex,
        "phase-terminates",
        |s| s.anchor.as_ref().is_some_and(|a| a.open_phase.is_some()),
        |s| s.anchor.as_ref().is_some_and(|a| a.open_phase.is_none()),
    ) {
        panic!("{name}: {}", cex.render());
    }
}

#[test]
fn bounded_model_check_is_exhaustive_and_clean() {
    // The full bounded instance (~1.5M states) is a release-mode workload;
    // the plain debug workspace job covers the reduced instance with the
    // same two-churn-event shape.
    if cfg!(debug_assertions) {
        run_scenario("smoke", Scenario::smoke());
    } else {
        run_scenario("bounded", Scenario::bounded_default());
    }
}

#[test]
fn reanchor_model_check_is_clean() {
    run_scenario("reanchor", Scenario::reanchor());
}

/// The deep instance.  Run with:
/// `SKUEUE_MODEL_FULL=1 cargo test --release -p skueue-model -- --ignored`
#[test]
#[ignore = "deep traversal; run via SKUEUE_MODEL_FULL=1 -- --ignored"]
fn full_model_check() {
    if std::env::var("SKUEUE_MODEL_FULL").as_deref() != Ok("1") {
        println!("full_model_check skipped (set SKUEUE_MODEL_FULL=1)");
        return;
    }
    run_scenario("full", Scenario::full());
}
