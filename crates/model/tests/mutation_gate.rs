//! Mutation sanity gate: proves the bounded model check has teeth.
//!
//! Compiled only with `--features model-mutation`, which removes the
//! stale-`UpdateOver` staleness guard from *both* the abstraction and the
//! real `skueue-core` (same `#[cfg]` gate): a delayed end-of-phase message
//! from an older update phase then cancels a younger phase's bookkeeping
//! and wedges the anchor.  The check must (a) find the wedge, (b) shrink
//! the counterexample to a replayable trace of at most 20 actions.

#![cfg(feature = "model-mutation")]

use skueue_model::{
    eventually, explore, model_safety_props, quiescent, reachable_exists, replay,
    shrink_to_scenario, Action, ExploreConfig, ProtocolModel, Scenario,
};

/// Reachability cap for the inevitability check; the smoke scenario's whole
/// state space is ~30k states, so this can never be hit.
const REACH_CAP: usize = 500_000;

/// A candidate trace "still fails" when the wedge is *inevitable* from its
/// final state: no quiescent state is reachable any more — the decisive
/// reordering has happened, everything after it is forced.
fn wedge_inevitable(model: &ProtocolModel, trace: &[Action]) -> bool {
    let states = replay(model, trace).expect("shrinker only offers feasible traces");
    let last = states.last().expect("replay includes the initial state");
    !reachable_exists(model, last, |s, _| quiescent(s), REACH_CAP)
}

#[test]
fn mutated_protocol_is_caught_and_shrunk() {
    // The smoke-sized bounded instance (two churn events, reorder window 2)
    // is enough to reach the race in both build profiles.
    let model = ProtocolModel::new(Scenario::smoke());
    let ex = explore(&model, &model_safety_props(), &ExploreConfig::default());
    assert!(!ex.truncated, "mutated exploration hit the state cap");
    println!(
        "model-check[mutated]: {} states, {} transitions, {} terminal states",
        ex.states_explored,
        ex.transitions,
        ex.terminals.len()
    );
    if let Some(cex) = &ex.violation {
        panic!("mutation must wedge liveness, not safety\n{}", cex.render());
    }

    // The stale-`UpdateOver` race must surface as a liveness failure: some
    // path ends in a state that never quiesces.
    let cex = eventually(&ex, "eventually-quiescent", quiescent)
        .expect_err("the mutated protocol must fail the quiescence check");
    println!("raw counterexample: {} actions", cex.trace.len());

    // `eventually` reports the first wedged terminal in discovery order;
    // start the shrink from the *shortest* wedged trace (BFS parents give
    // shortest paths, so the earliest-discovered terminal is the closest).
    let shortest = ex
        .terminals
        .iter()
        .copied()
        .filter(|&t| !quiescent(&ex.states[t as usize]))
        .map(|t| ex.trace_to(t))
        .min_by_key(|t| t.len())
        .expect("a wedged terminal exists");
    let cex_trace = if shortest.len() < cex.trace.len() {
        shortest
    } else {
        cex.trace.clone()
    };

    // Shrink to the minimal trace after which the wedge is inevitable and
    // serialise it as a replayable scenario.
    let (minimal, scenario) =
        shrink_to_scenario(&model, &cex_trace, |t| wedge_inevitable(&model, t), 0xFE1D);
    println!("shrunk counterexample ({} actions):", minimal.len());
    for (i, a) in minimal.iter().enumerate() {
        println!("  {i:3}. {a}");
    }
    println!("replay scenario: {}", scenario.to_compact());
    assert!(
        wedge_inevitable(&model, &minimal),
        "shrinking must preserve the failure"
    );
    assert!(
        minimal.len() <= 20,
        "shrunk trace must be at most 20 actions, got {}",
        minimal.len()
    );
    assert!(
        !scenario.steps.is_empty(),
        "the wedge needs at least one high-level step"
    );
}
