//! Lockstep conformance of the abstraction against the real cluster.
//!
//! Samples scenario traces (requests + at most one join and one leave),
//! drives the abstract model and a real `skueue-core` cluster through them
//! in lockstep, and compares the state projections (dequeue outcomes,
//! active membership, queue length, phases started) after every step.

#![cfg(not(feature = "model-mutation"))]

use skueue_model::run_conformance;

#[test]
fn model_agrees_with_cluster_on_sampled_traces() {
    let report = run_conformance(100).unwrap_or_else(|e| panic!("conformance failed: {e}"));
    println!(
        "conformance: {} traces, {} steps compared",
        report.traces, report.steps_compared
    );
    assert_eq!(report.traces, 100);
    assert!(
        report.steps_compared >= 500,
        "expected at least 5 steps per trace on average, got {}",
        report.steps_compared
    );
}
