//! Offline stand-in for the tiny slice of the `rand` crate this workspace
//! uses (see `crates/compat/README.md`).
//!
//! All randomness in the workspace flows through `skueue_sim::SimRng`, which
//! implements [`RngCore`] purely so that generic code written against the
//! `rand` ecosystem keeps working.  Only the `RngCore` trait and its `Error`
//! type are provided.

#![forbid(unsafe_code)]

use std::fmt;

/// Error type for fallible RNG operations (mirrors `rand::Error`).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "random number generator failure")
    }
}

impl std::error::Error for Error {}

/// The core random-number-generator trait (mirrors `rand::RngCore`).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 += 1;
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
    }

    #[test]
    fn trait_is_usable_with_default_try_fill() {
        let mut rng = Counter(0);
        assert_eq!(rng.next_u64(), 1);
        let mut buf = [0u8; 4];
        rng.try_fill_bytes(&mut buf).unwrap();
        assert_eq!(buf, [2, 3, 4, 5]);
    }
}
