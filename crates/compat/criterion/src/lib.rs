//! Offline stand-in for the slice of the `criterion` benchmarking API used by
//! `skueue-bench` (see `crates/compat/README.md`).
//!
//! The build environment has no access to crates.io, so the real `criterion`
//! cannot be vendored.  This shim keeps the bench targets compiling and
//! *actually measures* wall-clock time with `std::time::Instant`: each
//! benchmark runs its closure `sample_size` times (after one warm-up
//! iteration) and prints the mean per-iteration time.  It deliberately does
//! no statistical analysis, outlier rejection, or HTML reporting — swap in
//! the real `criterion` for that once a registry is reachable.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier (mirrors `criterion::black_box`).
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifier of one parameterised benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Creates an id from a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing driver handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: u64,
    /// Mean per-iteration time of the routine benchmarked last.
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then `samples` measured calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed = start.elapsed() / self.samples.max(1) as u32;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets how many measured iterations each benchmark runs.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1) as u64;
        self
    }

    /// Accepted for API compatibility; the stub ignores the time target and
    /// always runs exactly `sample_size` iterations.
    pub fn measurement_time(&mut self, _target: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub's warm-up is a single call.
    pub fn warm_up_time(&mut self, _target: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        self.criterion
            .report(&format!("{}/{}", self.name, id), bencher.elapsed);
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher, input);
        self.criterion
            .report(&format!("{}/{}", self.name, id), bencher.elapsed);
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Top-level benchmark driver (mirrors `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    benchmarks_run: u64,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut bencher = Bencher {
            samples: 10,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        self.report(name, bencher.elapsed);
    }

    /// Number of benchmarks reported so far.
    pub fn benchmarks_run(&self) -> u64 {
        self.benchmarks_run
    }

    fn report(&mut self, label: &str, mean: Duration) {
        self.benchmarks_run += 1;
        println!("{label:<60} {mean:>12.2?}/iter");
    }
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a set of benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(1));
        let mut calls = 0u64;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        // One warm-up + three samples per bench.
        assert_eq!(calls, 4);
        assert_eq!(c.benchmarks_run(), 2);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter(3).to_string(), "3");
    }
}
