//! Offline stand-in for the slice of the `proptest` API this workspace uses
//! (see `crates/compat/README.md`).
//!
//! The build environment has no crates.io access, so the real `proptest`
//! cannot be vendored.  This shim *actually runs* the property tests: the
//! [`proptest!`] macro expands each property into a `#[test]` that samples
//! its strategies from a deterministic PRNG for `ProptestConfig::cases`
//! iterations and panics on the first failing case, printing the case index
//! and message.  What it does **not** do is shrinking, persistence of failing
//! seeds, or the full strategy combinator algebra — swap in the real
//! `proptest` for that once a registry is reachable.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Range;

/// Everything a `proptest!` block needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Strategy collections (mirrors `proptest::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `size` (mirrors `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Per-property configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; this stub trades coverage for test-suite
        // latency. Properties that need more pass an explicit config.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass (mirrors `proptest::TestCaseError`).
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the inputs; the case is skipped, not failed.
    Reject(String),
    /// A `prop_assert*!` failed.
    Fail(String),
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Deterministic PRNG (SplitMix64) the stub samples strategies from.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator; each property derives its seed from its name so
    /// runs are reproducible without stored failure seeds.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A value generator (mirrors `proptest::strategy::Strategy`, minus the
/// combinators and shrinking machinery).
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Length distribution for [`collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        let span = (self.hi - self.lo).max(1) as u64;
        self.lo + (rng.next_u64() % span) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span.max(1)) as $ty
            }
        }
    )*};
}

int_range_strategy!(u64, u32, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

/// Types with a canonical "anything" strategy (mirrors `Arbitrary`).
pub trait ArbitraryValue {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryValue for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl ArbitraryValue for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl ArbitraryValue for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The "any value of `T`" strategy (mirrors `proptest::prelude::any`).
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Stable 64-bit FNV-1a hash of a property name (per-property RNG seed).
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Asserts inside a property; fails only the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Skips cases whose inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject(stringify!($cond).to_string()));
        }
    };
}

/// Declares property tests (mirrors `proptest::proptest!`).
///
/// Each property becomes a normal `#[test]` that runs `config.cases`
/// deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (@funcs ($config:expr) $(
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::new($crate::seed_from_name(stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body Ok(()) })();
                match outcome {
                    Ok(()) | Err($crate::TestCaseError::Reject(_)) => {}
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("property {} failed at case {case}: {msg}", stringify!($name));
                    }
                }
            }
        }
    )*};
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate as proptest;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
        }

        #[test]
        fn vectors_respect_size_and_element_bounds(
            v in proptest::collection::vec(1u64..5, 2..8),
            nested in proptest::collection::vec(proptest::collection::vec(0u64..3, 0..4), 0..5),
        ) {
            prop_assert!((2..8).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| (1..5).contains(&e)));
            prop_assert!(nested.len() < 5);
        }

        #[test]
        fn tuples_and_any_sample(pair in (0u64..4, any::<bool>()), x in any::<u64>()) {
            prop_assert!(pair.0 < 4);
            let _: bool = pair.1;
            prop_assert_eq!(x, x);
            prop_assert_ne!(pair.0, 4);
        }

        #[test]
        fn assume_skips_cases(a in any::<u64>(), b in any::<u64>()) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(super::seed_from_name("x"), super::seed_from_name("x"));
        assert_ne!(super::seed_from_name("x"), super::seed_from_name("y"));
    }

    #[test]
    fn failing_property_body_reports_fail() {
        let body = |x: u64| -> Result<(), TestCaseError> {
            prop_assert!(x > 10, "x was {}", x);
            Ok(())
        };
        assert!(matches!(body(2), Err(TestCaseError::Fail(_))));
        assert!(body(11).is_ok());
    }
}
