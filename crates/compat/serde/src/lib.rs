//! Offline stand-in for the `serde` crate (see `crates/compat/README.md`).
//!
//! The build environment of this repository has no access to crates.io, so
//! the real `serde` cannot be vendored.  Nothing in the workspace actually
//! serialises anything yet — the derives on result/record types exist so that
//! downstream users *can* serialise them once a real serializer is available.
//! This stub keeps those declarations compiling source-compatibly:
//!
//! * [`Serialize`] / [`Deserialize`] are marker traits blanket-implemented
//!   for every type, so bounds like `T: Serialize` are always satisfied,
//! * `#[derive(Serialize, Deserialize)]` resolves to no-op derive macros.
//!
//! Swapping this stub for the real `serde` is a one-line change in the
//! workspace manifests and requires no source edits.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; implemented by every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; implemented by every type.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(test)]
mod tests {
    #[derive(super::Serialize, super::Deserialize, Debug, PartialEq)]
    struct Probe {
        x: u64,
    }

    fn assert_serialize<T: super::Serialize>() {}
    fn assert_deserialize<'de, T: super::Deserialize<'de>>() {}

    #[test]
    fn derives_compile_and_traits_are_blanket() {
        assert_serialize::<Probe>();
        assert_deserialize::<Probe>();
        assert_eq!(Probe { x: 1 }, Probe { x: 1 });
    }
}
