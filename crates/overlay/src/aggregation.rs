//! Aggregation-tree parent/children rules (Section III-B).
//!
//! All virtual nodes of the LDB implicitly form an *aggregation tree* rooted
//! at the leftmost node (the **anchor**).  The parent of a node is always its
//! leftmost neighbour:
//!
//! * the parent of a middle node `m(v)` is the process's own left node `l(v)`,
//! * the parent of a left node `l(v)` is its predecessor on the cycle,
//! * the parent of a right node `r(v)` is the process's own middle node `m(v)`.
//!
//! Children mirror this:
//!
//! * a middle node's children are its own right node, plus its successor if
//!   that successor is a left node,
//! * a left node's children are its own middle node, plus its successor if
//!   that successor is a left node,
//! * a right node has no children.
//!
//! The anchor has no parent, and — because the successor relation wraps
//! around the cycle — the node with the *maximum* label must not claim the
//! anchor as a child.  Both rules are encoded here so the static topology
//! builder and the dynamic protocol derive the tree from exactly the same
//! logic (the paper stresses that nodes find their tree connections "by
//! relying on local information only").

use crate::vnode::VKind;
use serde::{Deserialize, Serialize};

/// Where a node's aggregation-tree parent is found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParentRule {
    /// The node is the anchor — it has no parent.
    Anchor,
    /// The parent is the process's own left virtual node (`l(v)`).
    OwnLeft,
    /// The parent is the process's own middle virtual node (`m(v)`).
    OwnMiddle,
    /// The parent is the predecessor on the sorted cycle.
    Predecessor,
}

/// Returns where the parent of a node of the given kind is found.
///
/// `is_anchor` must be true exactly for the node with the globally smallest
/// label.
pub fn parent_rule(kind: VKind, is_anchor: bool) -> ParentRule {
    if is_anchor {
        return ParentRule::Anchor;
    }
    match kind {
        VKind::Middle => ParentRule::OwnLeft,
        VKind::Left => ParentRule::Predecessor,
        VKind::Right => ParentRule::OwnMiddle,
    }
}

/// Resolves the aggregation-tree parent to a concrete handle.
///
/// The caller supplies handles for the candidates; this function picks the
/// right one according to [`parent_rule`].
pub fn aggregation_parent<T>(
    kind: VKind,
    is_anchor: bool,
    own_left: T,
    own_middle: T,
    predecessor: T,
) -> Option<T> {
    match parent_rule(kind, is_anchor) {
        ParentRule::Anchor => None,
        ParentRule::OwnLeft => Some(own_left),
        ParentRule::OwnMiddle => Some(own_middle),
        ParentRule::Predecessor => Some(predecessor),
    }
}

/// Whether a node should treat its cycle successor as an aggregation-tree
/// child.
///
/// That is the case exactly when the successor is a *left* virtual node and
/// the successor edge does not wrap around the cycle (the wrap successor is
/// the anchor, which is nobody's child).
pub fn successor_is_child(own_kind: VKind, successor_kind: VKind, successor_wraps: bool) -> bool {
    if successor_wraps {
        return false;
    }
    match own_kind {
        VKind::Middle | VKind::Left => successor_kind == VKind::Left,
        // "A right virtual node cannot have a left virtual node as a right
        // neighbor" — and it has no children regardless.
        VKind::Right => false,
    }
}

/// A node's aggregation-tree children — at most two, stored inline.
///
/// This is the allocation-free counterpart of [`aggregation_children`]: the
/// protocol recomputes its children on every `TIMEOUT`, so the hot path must
/// not heap-allocate a `Vec` per call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChildSet<T> {
    items: [Option<T>; 2],
}

impl<T> ChildSet<T> {
    /// The empty child set.
    pub fn new() -> Self {
        ChildSet {
            items: [None, None],
        }
    }

    /// Adds a child.  Panics if both slots are taken — the tree rules bound
    /// the fan-in at two.
    pub fn push(&mut self, item: T) {
        for slot in &mut self.items {
            if slot.is_none() {
                *slot = Some(item);
                return;
            }
        }
        panic!("an aggregation-tree node has at most two children");
    }

    /// Iterates over the children in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter().flatten()
    }

    /// Number of children.
    pub fn len(&self) -> usize {
        self.items.iter().flatten().count()
    }

    /// True when there are no children.
    pub fn is_empty(&self) -> bool {
        self.items[0].is_none()
    }

    /// True when `item` is a child.
    pub fn contains(&self, item: &T) -> bool
    where
        T: PartialEq,
    {
        self.iter().any(|c| c == item)
    }

    /// Copies the children into a `Vec` (for callers that need ownership).
    pub fn to_vec(&self) -> Vec<T>
    where
        T: Clone,
    {
        self.iter().cloned().collect()
    }
}

impl<T> IntoIterator for ChildSet<T> {
    type Item = T;
    type IntoIter = std::iter::Flatten<std::array::IntoIter<Option<T>, 2>>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter().flatten()
    }
}

/// Resolves the aggregation-tree children to concrete handles, without
/// heap allocation.
///
/// * `own_right` / `own_middle`: the process's own right and middle nodes,
/// * `successor`: the cycle successor,
/// * `successor_kind`: the successor's virtual-node kind,
/// * `successor_wraps`: true if the successor edge wraps around (i.e. this
///   node has the maximum label).
pub fn aggregation_child_set<T>(
    kind: VKind,
    own_right: T,
    own_middle: T,
    successor: T,
    successor_kind: VKind,
    successor_wraps: bool,
) -> ChildSet<T> {
    let mut children = ChildSet::new();
    match kind {
        VKind::Middle => children.push(own_right),
        VKind::Left => children.push(own_middle),
        VKind::Right => {}
    }
    if successor_is_child(kind, successor_kind, successor_wraps) {
        children.push(successor);
    }
    children
}

/// Resolves the aggregation-tree children into a `Vec` (see
/// [`aggregation_child_set`] for the allocation-free variant the protocol's
/// hot path uses).
pub fn aggregation_children<T: Clone>(
    kind: VKind,
    own_right: T,
    own_middle: T,
    successor: T,
    successor_kind: VKind,
    successor_wraps: bool,
) -> Vec<T> {
    aggregation_child_set(
        kind,
        own_right,
        own_middle,
        successor,
        successor_kind,
        successor_wraps,
    )
    .to_vec()
}

/// A fully resolved view of a node's position in the aggregation tree,
/// maintained by each protocol node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeNeighbors<T> {
    /// Parent handle (`None` for the anchor).
    pub parent: Option<T>,
    /// Child handles (between zero and two).
    pub children: Vec<T>,
}

impl<T: PartialEq> TreeNeighbors<T> {
    /// True for the anchor (no parent).
    pub fn is_root(&self) -> bool {
        self.parent.is_none()
    }

    /// True for leaves of the aggregation tree.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Whether `candidate` is one of this node's children.
    pub fn has_child(&self, candidate: &T) -> bool {
        self.children.iter().any(|c| c == candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parent_rules_match_paper() {
        assert_eq!(parent_rule(VKind::Middle, false), ParentRule::OwnLeft);
        assert_eq!(parent_rule(VKind::Left, false), ParentRule::Predecessor);
        assert_eq!(parent_rule(VKind::Right, false), ParentRule::OwnMiddle);
        assert_eq!(parent_rule(VKind::Left, true), ParentRule::Anchor);
    }

    #[test]
    fn anchor_has_no_parent() {
        assert_eq!(
            aggregation_parent(VKind::Left, true, "l", "m", "pred"),
            None
        );
    }

    #[test]
    fn parent_resolution_selects_correct_handle() {
        assert_eq!(
            aggregation_parent(VKind::Middle, false, "l", "m", "pred"),
            Some("l")
        );
        assert_eq!(
            aggregation_parent(VKind::Left, false, "l", "m", "pred"),
            Some("pred")
        );
        assert_eq!(
            aggregation_parent(VKind::Right, false, "l", "m", "pred"),
            Some("m")
        );
    }

    #[test]
    fn middle_children_include_own_right_and_left_successor() {
        let children = aggregation_children(VKind::Middle, "r", "m", "succ", VKind::Left, false);
        assert_eq!(children, vec!["r", "succ"]);
        let children = aggregation_children(VKind::Middle, "r", "m", "succ", VKind::Middle, false);
        assert_eq!(children, vec!["r"]);
    }

    #[test]
    fn left_children_include_own_middle_and_left_successor() {
        let children = aggregation_children(VKind::Left, "r", "m", "succ", VKind::Left, false);
        assert_eq!(children, vec!["m", "succ"]);
        let children = aggregation_children(VKind::Left, "r", "m", "succ", VKind::Right, false);
        assert_eq!(children, vec!["m"]);
    }

    #[test]
    fn right_nodes_have_no_children() {
        let children = aggregation_children(VKind::Right, "r", "m", "succ", VKind::Left, false);
        assert!(children.is_empty());
    }

    #[test]
    fn child_set_matches_vec_variant() {
        for kind in [VKind::Left, VKind::Middle, VKind::Right] {
            for succ_kind in [VKind::Left, VKind::Middle, VKind::Right] {
                for wraps in [false, true] {
                    let set = aggregation_child_set(kind, "r", "m", "succ", succ_kind, wraps);
                    let vec = aggregation_children(kind, "r", "m", "succ", succ_kind, wraps);
                    assert_eq!(set.to_vec(), vec, "{kind:?}/{succ_kind:?}/wraps={wraps}");
                    assert_eq!(set.len(), vec.len());
                    assert_eq!(set.is_empty(), vec.is_empty());
                    for child in &vec {
                        assert!(set.contains(child));
                    }
                }
            }
        }
    }

    #[test]
    fn child_set_push_iter_contains() {
        let mut set: ChildSet<u32> = ChildSet::new();
        assert!(set.is_empty());
        assert_eq!(set.len(), 0);
        set.push(7);
        set.push(9);
        assert_eq!(set.len(), 2);
        assert!(set.contains(&7) && set.contains(&9) && !set.contains(&8));
        assert_eq!(set.into_iter().collect::<Vec<_>>(), vec![7, 9]);
    }

    #[test]
    #[should_panic(expected = "at most two children")]
    fn child_set_rejects_a_third_child() {
        let mut set: ChildSet<u32> = ChildSet::new();
        set.push(1);
        set.push(2);
        set.push(3);
    }

    #[test]
    fn wrap_successor_is_never_a_child() {
        assert!(!successor_is_child(VKind::Middle, VKind::Left, true));
        assert!(!successor_is_child(VKind::Left, VKind::Left, true));
        assert!(successor_is_child(VKind::Left, VKind::Left, false));
        assert!(!successor_is_child(VKind::Left, VKind::Middle, false));
        assert!(!successor_is_child(VKind::Right, VKind::Left, false));
    }

    #[test]
    fn tree_neighbors_helpers() {
        let root: TreeNeighbors<u32> = TreeNeighbors {
            parent: None,
            children: vec![1, 2],
        };
        assert!(root.is_root());
        assert!(!root.is_leaf());
        assert!(root.has_child(&1));
        assert!(!root.has_child(&3));

        let leaf: TreeNeighbors<u32> = TreeNeighbors {
            parent: Some(0),
            children: vec![],
        };
        assert!(!leaf.is_root());
        assert!(leaf.is_leaf());
    }
}
