//! Virtual node identities.
//!
//! Definition 2 of the paper: each process `v` emulates three virtual nodes —
//! left `l(v)`, middle `m(v)` and right `r(v)`.  [`VirtualId`] names one of
//! them; the label is derived from the process's middle label via
//! [`VKind::label_from_middle`].

use crate::hash::LabelHasher;
use crate::label::Label;
use serde::{Deserialize, Serialize};
use skueue_sim::ids::ProcessId;
use std::fmt;

/// Which of a process's three virtual nodes this is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum VKind {
    /// `l(v)`, label `m(v)/2`, always in `[0, 1/2)`.
    Left,
    /// `m(v)`, label `hash(v.id)`, anywhere in `[0, 1)`.
    Middle,
    /// `r(v)`, label `(m(v)+1)/2`, always in `[1/2, 1)`.
    Right,
}

impl VKind {
    /// All three kinds, in the fixed order `[Left, Middle, Right]` used when
    /// registering a process's virtual nodes with the simulator.
    pub const ALL: [VKind; 3] = [VKind::Left, VKind::Middle, VKind::Right];

    /// Computes the label of this kind of virtual node from the process's
    /// middle label.
    #[inline]
    pub fn label_from_middle(self, middle: Label) -> Label {
        match self {
            VKind::Left => middle.half(),
            VKind::Middle => middle,
            VKind::Right => middle.half_plus(),
        }
    }

    /// Index `0..3` used for dense per-process arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            VKind::Left => 0,
            VKind::Middle => 1,
            VKind::Right => 2,
        }
    }

    /// Inverse of [`Self::index`].
    #[inline]
    pub fn from_index(i: usize) -> VKind {
        match i {
            0 => VKind::Left,
            1 => VKind::Middle,
            2 => VKind::Right,
            _ => panic!("virtual-node kind index {i} out of range"),
        }
    }
}

impl fmt::Debug for VKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VKind::Left => write!(f, "L"),
            VKind::Middle => write!(f, "M"),
            VKind::Right => write!(f, "R"),
        }
    }
}

/// Identity of one virtual node: which process emulates it, and which of the
/// three roles it plays.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VirtualId {
    /// The emulating process.
    pub process: ProcessId,
    /// The role within the process.
    pub kind: VKind,
}

impl VirtualId {
    /// Creates a virtual id.
    pub fn new(process: ProcessId, kind: VKind) -> Self {
        VirtualId { process, kind }
    }

    /// The left virtual node of a process.
    pub fn left(process: ProcessId) -> Self {
        VirtualId::new(process, VKind::Left)
    }

    /// The middle virtual node of a process.
    pub fn middle(process: ProcessId) -> Self {
        VirtualId::new(process, VKind::Middle)
    }

    /// The right virtual node of a process.
    pub fn right(process: ProcessId) -> Self {
        VirtualId::new(process, VKind::Right)
    }

    /// Computes this virtual node's label using the given hasher.
    pub fn label(&self, hasher: &LabelHasher) -> Label {
        self.kind
            .label_from_middle(hasher.process_label(self.process))
    }

    /// The sibling virtual node of the same process with the given kind.
    pub fn sibling(&self, kind: VKind) -> VirtualId {
        VirtualId::new(self.process, kind)
    }
}

impl fmt::Debug for VirtualId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}{:?}", self.kind, self.process)
    }
}

impl fmt::Display for VirtualId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_index_roundtrip() {
        for kind in VKind::ALL {
            assert_eq!(VKind::from_index(kind.index()), kind);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn kind_from_bad_index_panics() {
        let _ = VKind::from_index(3);
    }

    #[test]
    fn labels_from_middle_match_paper() {
        let m = Label::from_f64(0.6);
        assert!((VKind::Left.label_from_middle(m).to_f64() - 0.3).abs() < 1e-9);
        assert!((VKind::Middle.label_from_middle(m).to_f64() - 0.6).abs() < 1e-9);
        assert!((VKind::Right.label_from_middle(m).to_f64() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn left_label_below_half_right_above() {
        let hasher = LabelHasher::default();
        for pid in 0..200u64 {
            let p = ProcessId(pid);
            assert!(VirtualId::left(p).label(&hasher).is_left_half());
            assert!(!VirtualId::right(p).label(&hasher).is_left_half());
        }
    }

    #[test]
    fn siblings_share_process() {
        let v = VirtualId::middle(ProcessId(9));
        assert_eq!(v.sibling(VKind::Left), VirtualId::left(ProcessId(9)));
        assert_eq!(v.sibling(VKind::Right).process, ProcessId(9));
    }

    #[test]
    fn display_and_debug() {
        let v = VirtualId::right(ProcessId(3));
        assert_eq!(format!("{v}"), "Rp3");
        assert_eq!(format!("{v:?}"), "Rp3");
        assert_eq!(format!("{:?}", VKind::Left), "L");
    }

    #[test]
    fn ordering_groups_by_process_then_kind() {
        let a = VirtualId::left(ProcessId(1));
        let b = VirtualId::right(ProcessId(1));
        let c = VirtualId::left(ProcessId(2));
        assert!(a < b && b < c);
    }
}
