//! The Linearized De Bruijn network as a whole: the static topology builder.
//!
//! [`Topology`] materialises Definition 2 for a given set of processes: it
//! computes all virtual-node labels, sorts them into the cycle, and answers
//! structural queries (predecessor/successor, responsibility, aggregation
//! parent/children, anchor, tree height).  It is used to
//!
//! * bootstrap a simulation (the cluster builds the initial neighbour views
//!   of all protocol nodes from it),
//! * compute *reference* topologies in tests (e.g. the expected state after
//!   a batch of joins/leaves), and
//! * drive the pure-overlay experiments (tree height, routing hop counts —
//!   Corollary 6 / Lemma 3).
//!
//! The dynamic protocol does **not** consult a `Topology` at runtime; nodes
//! only use their local views, exactly as in the paper.

use crate::aggregation::{aggregation_children, aggregation_parent};
use crate::hash::LabelHasher;
use crate::label::Label;
use crate::routing::{LocalView, NeighborInfo};
use crate::vnode::{VKind, VirtualId};
use skueue_sim::ids::{NodeId, ProcessId};
use std::collections::HashMap;
use std::fmt;

/// One virtual node of the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtualNodeInfo {
    /// The virtual node's identity.
    pub vid: VirtualId,
    /// Its label on the unit ring.
    pub label: Label,
}

/// Errors produced by [`Topology`] construction and updates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// No processes were supplied.
    Empty,
    /// The same process id appeared twice.
    DuplicateProcess(ProcessId),
    /// A process id was not found.
    UnknownProcess(ProcessId),
    /// A virtual node id was not found.
    UnknownNode(VirtualId),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::Empty => write!(f, "topology needs at least one process"),
            TopologyError::DuplicateProcess(p) => write!(f, "duplicate process {p}"),
            TopologyError::UnknownProcess(p) => write!(f, "unknown process {p}"),
            TopologyError::UnknownNode(v) => write!(f, "unknown virtual node {v}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// The full Linearized De Bruijn topology over a set of processes.
#[derive(Debug, Clone)]
pub struct Topology {
    hasher: LabelHasher,
    /// All virtual nodes sorted by `(label, vid)` — the cycle order.
    sorted: Vec<VirtualNodeInfo>,
    /// Rank (index into `sorted`) of every virtual node.
    rank: HashMap<VirtualId, usize>,
    processes: Vec<ProcessId>,
}

impl Topology {
    /// Builds the topology for the given processes.
    pub fn build(processes: &[ProcessId], hasher: LabelHasher) -> Result<Self, TopologyError> {
        if processes.is_empty() {
            return Err(TopologyError::Empty);
        }
        let mut seen = HashMap::new();
        for &p in processes {
            if seen.insert(p, ()).is_some() {
                return Err(TopologyError::DuplicateProcess(p));
            }
        }
        let mut topo = Topology {
            hasher,
            sorted: Vec::with_capacity(processes.len() * 3),
            rank: HashMap::with_capacity(processes.len() * 3),
            processes: processes.to_vec(),
        };
        for &p in processes {
            let middle = hasher.process_label(p);
            for kind in VKind::ALL {
                topo.sorted.push(VirtualNodeInfo {
                    vid: VirtualId::new(p, kind),
                    label: kind.label_from_middle(middle),
                });
            }
        }
        topo.reindex();
        Ok(topo)
    }

    fn reindex(&mut self) {
        self.sorted.sort_by_key(|n| (n.label, n.vid));
        self.rank.clear();
        for (i, n) in self.sorted.iter().enumerate() {
            self.rank.insert(n.vid, i);
        }
    }

    /// The hasher this topology was built with.
    pub fn hasher(&self) -> &LabelHasher {
        &self.hasher
    }

    /// Number of virtual nodes (three per process).
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if there are no nodes (never the case for a built topology).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Number of processes.
    pub fn num_processes(&self) -> usize {
        self.processes.len()
    }

    /// The process ids in insertion order.
    pub fn processes(&self) -> &[ProcessId] {
        &self.processes
    }

    /// Iterates over all virtual nodes in cycle (label) order.
    pub fn iter(&self) -> impl Iterator<Item = &VirtualNodeInfo> {
        self.sorted.iter()
    }

    /// True if the virtual node belongs to this topology.
    pub fn contains(&self, vid: VirtualId) -> bool {
        self.rank.contains_key(&vid)
    }

    /// The label of a virtual node.
    pub fn label_of(&self, vid: VirtualId) -> Result<Label, TopologyError> {
        self.rank
            .get(&vid)
            .map(|&i| self.sorted[i].label)
            .ok_or(TopologyError::UnknownNode(vid))
    }

    /// Position of the node in the sorted cycle (0 = anchor).
    pub fn rank_of(&self, vid: VirtualId) -> Result<usize, TopologyError> {
        self.rank
            .get(&vid)
            .copied()
            .ok_or(TopologyError::UnknownNode(vid))
    }

    /// The node at a given rank.
    pub fn at_rank(&self, rank: usize) -> &VirtualNodeInfo {
        &self.sorted[rank % self.sorted.len()]
    }

    /// Cycle predecessor (wraps around).
    pub fn pred(&self, vid: VirtualId) -> Result<VirtualId, TopologyError> {
        let i = self.rank_of(vid)?;
        let n = self.sorted.len();
        Ok(self.sorted[(i + n - 1) % n].vid)
    }

    /// Cycle successor (wraps around).
    pub fn succ(&self, vid: VirtualId) -> Result<VirtualId, TopologyError> {
        let i = self.rank_of(vid)?;
        let n = self.sorted.len();
        Ok(self.sorted[(i + 1) % n].vid)
    }

    /// The anchor: the node with the smallest label (always a left node in a
    /// multi-process system).
    pub fn anchor(&self) -> VirtualId {
        self.sorted[0].vid
    }

    /// The node with the largest label.
    pub fn max_node(&self) -> VirtualId {
        self.sorted[self.sorted.len() - 1].vid
    }

    /// The node responsible for a key: the node `u` with `u ≤ key < succ(u)`
    /// (wrapping to the maximum-label node for keys below the anchor).
    pub fn responsible_for(&self, key: Label) -> VirtualId {
        // Binary search for the last node with label <= key.
        match self
            .sorted
            .binary_search_by(|n| n.label.cmp(&key).then(std::cmp::Ordering::Less))
        {
            Ok(i) => self.sorted[i].vid,
            Err(0) => self.max_node(),
            Err(i) => self.sorted[i - 1].vid,
        }
    }

    /// Aggregation-tree parent (Section III-B). `None` for the anchor.
    pub fn parent(&self, vid: VirtualId) -> Result<Option<VirtualId>, TopologyError> {
        let _ = self.rank_of(vid)?;
        let is_anchor = vid == self.anchor();
        Ok(aggregation_parent(
            vid.kind,
            is_anchor,
            vid.sibling(VKind::Left),
            vid.sibling(VKind::Middle),
            self.pred(vid)?,
        ))
    }

    /// Aggregation-tree children (Section III-B).
    pub fn children(&self, vid: VirtualId) -> Result<Vec<VirtualId>, TopologyError> {
        let i = self.rank_of(vid)?;
        let succ = self.succ(vid)?;
        let succ_wraps = i == self.sorted.len() - 1;
        Ok(aggregation_children(
            vid.kind,
            vid.sibling(VKind::Right),
            vid.sibling(VKind::Middle),
            succ,
            succ.kind,
            succ_wraps,
        ))
    }

    /// Depth of a node in the aggregation tree (anchor = 0).
    pub fn depth(&self, vid: VirtualId) -> Result<usize, TopologyError> {
        let mut depth = 0usize;
        let mut current = vid;
        while let Some(parent) = self.parent(current)? {
            depth += 1;
            current = parent;
            if depth > self.len() {
                // The parent relation is provably acyclic (labels strictly
                // decrease); this guard only protects against future bugs.
                panic!("aggregation-tree parent chain did not terminate");
            }
        }
        Ok(depth)
    }

    /// Height of the aggregation tree (maximum depth over all nodes) — the
    /// quantity Corollary 6 bounds by `O(log n)` w.h.p.
    pub fn tree_height(&self) -> usize {
        self.sorted
            .iter()
            .map(|n| self.depth(n.vid).expect("node from own topology"))
            .max()
            .unwrap_or(0)
    }

    /// Adds a process (recomputing the cycle). Returns an error if it is
    /// already present.
    pub fn add_process(&mut self, p: ProcessId) -> Result<(), TopologyError> {
        if self.processes.contains(&p) {
            return Err(TopologyError::DuplicateProcess(p));
        }
        self.processes.push(p);
        let middle = self.hasher.process_label(p);
        for kind in VKind::ALL {
            self.sorted.push(VirtualNodeInfo {
                vid: VirtualId::new(p, kind),
                label: kind.label_from_middle(middle),
            });
        }
        self.reindex();
        Ok(())
    }

    /// Removes a process (recomputing the cycle).
    pub fn remove_process(&mut self, p: ProcessId) -> Result<(), TopologyError> {
        if !self.processes.contains(&p) {
            return Err(TopologyError::UnknownProcess(p));
        }
        if self.processes.len() == 1 {
            return Err(TopologyError::Empty);
        }
        self.processes.retain(|&q| q != p);
        self.sorted.retain(|n| n.vid.process != p);
        self.reindex();
        Ok(())
    }

    /// Builds the [`LocalView`] of a virtual node, mapping virtual ids to
    /// simulator node ids with `node_of`.
    pub fn local_view(
        &self,
        vid: VirtualId,
        node_of: &dyn Fn(VirtualId) -> NodeId,
    ) -> Result<LocalView, TopologyError> {
        let info = |v: VirtualId| -> Result<NeighborInfo, TopologyError> {
            Ok(NeighborInfo::new(node_of(v), v, self.label_of(v)?))
        };
        let me = info(vid)?;
        let pred = info(self.pred(vid)?)?;
        let succ = info(self.succ(vid)?)?;
        let siblings = [
            info(vid.sibling(VKind::Left))?,
            info(vid.sibling(VKind::Middle))?,
            info(vid.sibling(VKind::Right))?,
        ];
        Ok(LocalView {
            me,
            pred,
            succ,
            siblings,
            middle_finger: None,
        })
    }

    /// The nearest *middle* virtual node in successor direction (wrapping),
    /// excluding `vid` itself — the target of the nearest-middle routing
    /// finger.  `None` only when the topology contains no other middle node.
    pub fn nearest_middle_after(&self, vid: VirtualId) -> Result<Option<VirtualId>, TopologyError> {
        let start = self.rank_of(vid)?;
        let n = self.sorted.len();
        for step in 1..=n {
            let candidate = &self.sorted[(start + step) % n];
            if candidate.vid == vid {
                break;
            }
            if candidate.vid.kind == VKind::Middle {
                return Ok(Some(candidate.vid));
            }
        }
        Ok(None)
    }

    /// Like [`Self::local_view`], but additionally populates the
    /// nearest-middle routing finger (see [`LocalView::middle_finger`]).
    pub fn local_view_with_fingers(
        &self,
        vid: VirtualId,
        node_of: &dyn Fn(VirtualId) -> NodeId,
    ) -> Result<LocalView, TopologyError> {
        let mut view = self.local_view(vid, node_of)?;
        view.middle_finger = self
            .nearest_middle_after(vid)?
            .map(|m| -> Result<NeighborInfo, TopologyError> {
                Ok(NeighborInfo::new(node_of(m), m, self.label_of(m)?))
            })
            .transpose()?;
        Ok(view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::{recommended_bit_budget, route_step, RouteAction, RouteProgress};
    use proptest::prelude::*;

    fn pids(n: u64) -> Vec<ProcessId> {
        (0..n).map(ProcessId).collect()
    }

    fn topo(n: u64) -> Topology {
        Topology::build(&pids(n), LabelHasher::default()).unwrap()
    }

    #[test]
    fn build_rejects_empty_and_duplicates() {
        assert_eq!(
            Topology::build(&[], LabelHasher::default()).unwrap_err(),
            TopologyError::Empty
        );
        assert_eq!(
            Topology::build(&[ProcessId(1), ProcessId(1)], LabelHasher::default()).unwrap_err(),
            TopologyError::DuplicateProcess(ProcessId(1))
        );
    }

    #[test]
    fn three_virtual_nodes_per_process() {
        let t = topo(10);
        assert_eq!(t.len(), 30);
        assert_eq!(t.num_processes(), 10);
        for p in 0..10u64 {
            for kind in VKind::ALL {
                assert!(t.contains(VirtualId::new(ProcessId(p), kind)));
            }
        }
    }

    #[test]
    fn cycle_is_sorted_and_consistent() {
        let t = topo(20);
        let labels: Vec<Label> = t.iter().map(|n| n.label).collect();
        let mut sorted = labels.clone();
        sorted.sort();
        assert_eq!(labels, sorted);
        // pred/succ are inverses and wrap correctly.
        for n in t.iter() {
            let s = t.succ(n.vid).unwrap();
            assert_eq!(t.pred(s).unwrap(), n.vid);
        }
        assert_eq!(t.succ(t.max_node()).unwrap(), t.anchor());
        assert_eq!(t.pred(t.anchor()).unwrap(), t.max_node());
    }

    #[test]
    fn anchor_is_global_minimum_and_a_left_node() {
        for n in [1u64, 2, 3, 10, 100] {
            let t = topo(n);
            let anchor = t.anchor();
            let min_label = t.iter().map(|v| v.label).min().unwrap();
            assert_eq!(t.label_of(anchor).unwrap(), min_label);
            if n >= 2 {
                assert_eq!(anchor.kind, VKind::Left, "n={n}");
            }
        }
    }

    #[test]
    fn responsibility_covers_the_whole_ring() {
        let t = topo(25);
        // Every node is responsible exactly for [label, succ_label).
        for probe in 0..1000u64 {
            let key = Label::from_raw(probe.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let owner = t.responsible_for(key);
            let lo = t.label_of(owner).unwrap();
            let hi = t.label_of(t.succ(owner).unwrap()).unwrap();
            assert!(key.in_interval(lo, hi), "key {key} not in [{lo}, {hi})");
        }
    }

    #[test]
    fn responsibility_below_anchor_wraps_to_max_node() {
        let t = topo(8);
        let anchor_label = t.label_of(t.anchor()).unwrap();
        if anchor_label.raw() > 0 {
            let key = Label::from_raw(anchor_label.raw() - 1);
            assert_eq!(t.responsible_for(key), t.max_node());
        }
        assert_eq!(t.responsible_for(anchor_label), t.anchor());
    }

    #[test]
    fn parent_child_relations_are_consistent() {
        let t = topo(30);
        for n in t.iter() {
            if let Some(parent) = t.parent(n.vid).unwrap() {
                let children = t.children(parent).unwrap();
                assert!(
                    children.contains(&n.vid),
                    "{:?}'s parent {:?} does not list it as a child (children: {:?})",
                    n.vid,
                    parent,
                    children
                );
            } else {
                assert_eq!(n.vid, t.anchor());
            }
        }
        // And the converse: every child's parent is the node itself.
        for n in t.iter() {
            for child in t.children(n.vid).unwrap() {
                assert_eq!(t.parent(child).unwrap(), Some(n.vid));
            }
        }
    }

    #[test]
    fn parents_have_smaller_labels() {
        let t = topo(40);
        for n in t.iter() {
            if let Some(parent) = t.parent(n.vid).unwrap() {
                assert!(
                    t.label_of(parent).unwrap() <= n.label,
                    "parent {:?} not left of {:?}",
                    parent,
                    n.vid
                );
            }
        }
    }

    #[test]
    fn tree_spans_all_nodes() {
        let t = topo(50);
        // Every node reaches the anchor by following parents; depth() already
        // asserts termination, so summing depths is enough to cover all nodes.
        let total: usize = t.iter().map(|n| t.depth(n.vid).unwrap()).sum();
        assert!(total > 0);
        assert_eq!(t.depth(t.anchor()).unwrap(), 0);
    }

    #[test]
    fn tree_height_scales_logarithmically() {
        // Corollary 6: height is O(log n) w.h.p. Check a generous constant.
        for &n in &[10u64, 100, 1000] {
            let t = topo(n);
            let height = t.tree_height();
            let log2n = ((3 * n) as f64).log2();
            assert!(
                (height as f64) <= 8.0 * log2n + 8.0,
                "height {height} too large for n={n} (log2(3n)={log2n:.1})"
            );
            assert!(height >= 1);
        }
    }

    #[test]
    fn single_process_topology_is_well_formed() {
        let t = topo(1);
        assert_eq!(t.len(), 3);
        let anchor = t.anchor();
        assert_eq!(t.depth(anchor).unwrap(), 0);
        assert!(t.tree_height() <= 2);
        // All three nodes reachable from the anchor.
        for n in t.iter() {
            assert!(t.depth(n.vid).unwrap() <= 2);
        }
    }

    #[test]
    fn add_and_remove_process_update_cycle() {
        let mut t = topo(5);
        assert_eq!(t.len(), 15);
        t.add_process(ProcessId(100)).unwrap();
        assert_eq!(t.len(), 18);
        assert!(t.contains(VirtualId::middle(ProcessId(100))));
        assert!(t.add_process(ProcessId(100)).is_err());
        t.remove_process(ProcessId(100)).unwrap();
        assert_eq!(t.len(), 15);
        assert!(!t.contains(VirtualId::middle(ProcessId(100))));
        assert!(t.remove_process(ProcessId(100)).is_err());
    }

    #[test]
    fn cannot_remove_last_process() {
        let mut t = topo(1);
        assert_eq!(
            t.remove_process(ProcessId(0)).unwrap_err(),
            TopologyError::Empty
        );
    }

    #[test]
    fn local_view_matches_topology() {
        let t = topo(12);
        let node_of = |v: VirtualId| NodeId(v.process.raw() * 3 + v.kind.index() as u64);
        for n in t.iter() {
            let view = t.local_view(n.vid, &node_of).unwrap();
            assert_eq!(view.me.vid, n.vid);
            assert_eq!(view.pred.vid, t.pred(n.vid).unwrap());
            assert_eq!(view.succ.vid, t.succ(n.vid).unwrap());
            assert_eq!(
                view.sibling(VKind::Middle).vid,
                n.vid.sibling(VKind::Middle)
            );
            assert_eq!(view.is_anchor(), n.vid == t.anchor());
            assert_eq!(view.successor_wraps(), n.vid == t.max_node());
        }
    }

    /// Simulates routing over the static topology using only local views and
    /// the `route_step` rule, returning the hop count.  `fingers` selects
    /// whether the views carry the nearest-middle finger.
    fn simulate_route_on(
        t: &Topology,
        from: VirtualId,
        key: Label,
        fingers: bool,
    ) -> (VirtualId, u32) {
        let node_of = |v: VirtualId| NodeId(v.process.raw() * 3 + v.kind.index() as u64);
        let vid_of = |n: NodeId| -> VirtualId {
            VirtualId::new(ProcessId(n.0 / 3), VKind::from_index((n.0 % 3) as usize))
        };
        let mut current = from;
        let mut progress = RouteProgress::new(key, recommended_bit_budget(t.num_processes()));
        let max_hops = 40 * (t.len() as u32 + 2);
        loop {
            let view = if fingers {
                t.local_view_with_fingers(current, &node_of).unwrap()
            } else {
                t.local_view(current, &node_of).unwrap()
            };
            match route_step(&view, &mut progress) {
                RouteAction::Deliver => return (current, progress.hops),
                RouteAction::Forward(next) => {
                    progress.hops += 1;
                    assert!(progress.hops < max_hops, "routing did not terminate");
                    current = vid_of(next);
                }
            }
        }
    }

    fn simulate_route(t: &Topology, from: VirtualId, key: Label) -> (VirtualId, u32) {
        simulate_route_on(t, from, key, false)
    }

    #[test]
    fn routing_reaches_the_responsible_node() {
        let t = topo(64);
        let mut raw = 0xDEAD_BEEFu64;
        for i in 0..200u64 {
            raw = raw.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = Label::from_raw(raw);
            let from = t.at_rank((i as usize * 7) % t.len()).vid;
            let (reached, _) = simulate_route(&t, from, key);
            assert_eq!(
                reached,
                t.responsible_for(key),
                "wrong destination for key {key}"
            );
        }
    }

    #[test]
    fn finger_views_point_at_the_nearest_middle() {
        let t = topo(16);
        let node_of = |v: VirtualId| NodeId(v.process.raw() * 3 + v.kind.index() as u64);
        for n in t.iter() {
            let view = t.local_view_with_fingers(n.vid, &node_of).unwrap();
            let finger = view.middle_finger.expect("16 processes have middles");
            assert_eq!(finger.vid.kind, VKind::Middle);
            assert_ne!(finger.vid, n.vid);
            // Walking the cycle from succ must meet the finger before any
            // other middle node.
            let mut cur = t.succ(n.vid).unwrap();
            while cur.kind != VKind::Middle {
                cur = t.succ(cur).unwrap();
            }
            assert_eq!(cur, finger.vid, "finger of {:?} skipped a middle", n.vid);
            // The rest of the view is untouched.
            let plain = t.local_view(n.vid, &node_of).unwrap();
            assert_eq!(view.me, plain.me);
            assert_eq!(view.pred, plain.pred);
            assert_eq!(view.succ, plain.succ);
        }
        // A single process has exactly one middle: its own sibling still
        // counts for the left/right nodes, but the middle itself has none.
        let t1 = topo(1);
        let mid = t1.iter().find(|n| n.vid.kind == VKind::Middle).unwrap().vid;
        assert_eq!(t1.nearest_middle_after(mid).unwrap(), None);
        let left = t1.iter().find(|n| n.vid.kind == VKind::Left).unwrap().vid;
        assert_eq!(t1.nearest_middle_after(left).unwrap(), Some(mid));
    }

    #[test]
    fn finger_routing_reaches_the_same_node_in_fewer_hops() {
        let t = topo(256);
        let mut raw = 0xFEED_F00Du64;
        let (mut total_plain, mut total_finger) = (0u64, 0u64);
        for i in 0..200u64 {
            raw = raw.wrapping_mul(6364136223846793005).wrapping_add(1);
            let key = Label::from_raw(raw);
            let from = t.at_rank((i as usize * 11) % t.len()).vid;
            let (plain_dest, plain_hops) = simulate_route_on(&t, from, key, false);
            let (finger_dest, finger_hops) = simulate_route_on(&t, from, key, true);
            assert_eq!(plain_dest, finger_dest, "finger changed the destination");
            assert_eq!(plain_dest, t.responsible_for(key));
            // Individual routes may get slightly longer (the jump can skip
            // over an early-responsible node the walk would have delivered
            // at, costing a short walk back), but never pathologically so.
            assert!(
                finger_hops <= plain_hops + 4,
                "finger route much longer: {finger_hops} vs {plain_hops}"
            );
            total_plain += plain_hops as u64;
            total_finger += finger_hops as u64;
        }
        // Each halving bit costs ~3 hops without the finger (search + jump)
        // and ~2 with it; demand a clearly visible aggregate win.
        assert!(
            (total_finger as f64) < 0.9 * total_plain as f64,
            "expected >=10% hop reduction, got {total_finger} vs {total_plain}"
        );
    }

    #[test]
    fn routing_hops_scale_logarithmically() {
        // Lemma 3: O(log n) hops w.h.p. Compare mean hops at two sizes.
        let measure = |n: u64, samples: u64| -> f64 {
            let t = topo(n);
            let mut raw = 42u64;
            let mut total = 0u64;
            for i in 0..samples {
                raw = raw.wrapping_mul(6364136223846793005).wrapping_add(1);
                let key = Label::from_raw(raw);
                let from = t.at_rank((i as usize * 13) % t.len()).vid;
                let (_, hops) = simulate_route(&t, from, key);
                total += hops as u64;
            }
            total as f64 / samples as f64
        };
        let small = measure(32, 100);
        let large = measure(1024, 100);
        let log_ratio = ((3.0 * 1024.0f64).log2()) / ((3.0 * 32.0f64).log2());
        // Hops should grow roughly like log n: much slower than linearly
        // (32x more nodes), and not shrink.
        assert!(large >= small * 0.8, "large={large} small={small}");
        assert!(
            large <= small * log_ratio * 3.0,
            "routing hops grew super-logarithmically: {small} -> {large}"
        );
        // And stay in a sane absolute band.
        assert!(
            large < 120.0,
            "mean hops {large} too high for n=1024 processes"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_responsibility_partitions_ring(n in 2u64..40, key_raw in any::<u64>()) {
            let t = topo(n);
            let key = Label::from_raw(key_raw);
            let owner = t.responsible_for(key);
            // Exactly one node owns the key.
            let owners: Vec<_> = t
                .iter()
                .filter(|v| {
                    let lo = v.label;
                    let hi = t.label_of(t.succ(v.vid).unwrap()).unwrap();
                    key.in_interval(lo, hi)
                })
                .map(|v| v.vid)
                .collect();
            prop_assert_eq!(owners.len(), 1);
            prop_assert_eq!(owners[0], owner);
        }

        #[test]
        fn prop_children_counts_are_bounded(n in 1u64..40) {
            let t = topo(n);
            for v in t.iter() {
                let children = t.children(v.vid).unwrap();
                prop_assert!(children.len() <= 2);
                if v.vid.kind == VKind::Right {
                    prop_assert!(children.is_empty());
                }
            }
        }

        #[test]
        fn prop_every_non_anchor_has_parent(n in 1u64..30, seed in any::<u64>()) {
            let t = Topology::build(&pids(n), LabelHasher::new(seed)).unwrap();
            let anchor = t.anchor();
            for v in t.iter() {
                let parent = t.parent(v.vid).unwrap();
                prop_assert_eq!(parent.is_none(), v.vid == anchor);
            }
        }

        #[test]
        fn prop_routing_delivers_correctly(n in 1u64..48, seed in any::<u64>(), key_raw in any::<u64>(), start in any::<u64>()) {
            let t = Topology::build(&pids(n), LabelHasher::new(seed)).unwrap();
            let key = Label::from_raw(key_raw);
            let from = t.at_rank((start as usize) % t.len()).vid;
            let (reached, hops) = simulate_route(&t, from, key);
            prop_assert_eq!(reached, t.responsible_for(key));
            prop_assert!(hops as usize <= 20 * (t.len() + 4));
        }
    }
}
