//! Fixed-point labels on the unit ring `[0, 1)`.
//!
//! The paper identifies every virtual node with a real-valued label in
//! `[0, 1)` and places elements of the DHT at real-valued keys in the same
//! interval.  Using `f64` for these would make protocol-critical comparisons
//! depend on floating-point rounding, so we represent a label as a `u64`
//! numerator over `2^64`: the label value is `raw / 2^64`.  Halving and the
//! De-Bruijn "distance-halving" maps `x ↦ x/2` and `x ↦ (x+1)/2` are exact
//! in this representation.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A point on the unit ring `[0, 1)`, stored as `raw / 2^64`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Label(pub u64);

impl Label {
    /// The point 0.
    pub const ZERO: Label = Label(0);
    /// The point 1/2.
    pub const HALF: Label = Label(1 << 63);
    /// The largest representable point (just below 1).
    pub const MAX: Label = Label(u64::MAX);

    /// Creates a label from its raw numerator.
    #[inline]
    pub fn from_raw(raw: u64) -> Self {
        Label(raw)
    }

    /// Raw numerator over `2^64`.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Creates a label from an `f64` in `[0, 1)`; values outside the range
    /// are clamped. Intended for tests and display-level code only.
    pub fn from_f64(x: f64) -> Self {
        let clamped = x.clamp(0.0, 1.0 - f64::EPSILON);
        Label((clamped * (u64::MAX as f64 + 1.0)) as u64)
    }

    /// The label as an `f64` (for display and plotting only).
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / (u64::MAX as f64 + 1.0)
    }

    /// The De-Bruijn left map `x ↦ x/2`, i.e. the label of `l(v)` given
    /// `m(v)`.
    #[inline]
    pub fn half(self) -> Label {
        Label(self.0 >> 1)
    }

    /// The De-Bruijn right map `x ↦ (x+1)/2`, i.e. the label of `r(v)` given
    /// `m(v)`.
    #[inline]
    pub fn half_plus(self) -> Label {
        Label((self.0 >> 1) | (1 << 63))
    }

    /// The inverse of the distance-halving maps: `x ↦ 2x mod 1`.
    #[inline]
    pub fn double(self) -> Label {
        Label(self.0 << 1)
    }

    /// Applies the distance-halving map with the given bit:
    /// `bit == false` gives `x/2`, `bit == true` gives `(x+1)/2`.
    #[inline]
    pub fn debruijn_step(self, bit: bool) -> Label {
        if bit {
            self.half_plus()
        } else {
            self.half()
        }
    }

    /// `true` for labels in `[0, 1/2)` — the range of left virtual nodes.
    #[inline]
    pub fn is_left_half(self) -> bool {
        self.0 < (1 << 63)
    }

    /// The most significant `count` bits of the label (most significant
    /// first), as used by the De-Bruijn routing phase.
    pub fn leading_bits(self, count: u32) -> Vec<bool> {
        let count = count.min(64);
        (0..count).map(|i| (self.0 >> (63 - i)) & 1 == 1).collect()
    }

    /// Clockwise (increasing-label) distance from `self` to `to` on the unit
    /// ring, as a raw `u64` fraction of the ring.
    #[inline]
    pub fn cw_distance(self, to: Label) -> u64 {
        to.0.wrapping_sub(self.0)
    }

    /// Counter-clockwise distance from `self` to `to` on the ring.
    #[inline]
    pub fn ccw_distance(self, to: Label) -> u64 {
        self.0.wrapping_sub(to.0)
    }

    /// Shortest ring distance between two labels.
    #[inline]
    pub fn ring_distance(self, other: Label) -> u64 {
        self.cw_distance(other).min(self.ccw_distance(other))
    }

    /// True if `self` lies in the half-open ring interval `[lo, hi)`,
    /// handling wrap-around. The full ring (`lo == hi`) contains everything.
    #[inline]
    pub fn in_interval(self, lo: Label, hi: Label) -> bool {
        if lo == hi {
            // Degenerate interval: interpreted as the whole ring. This is the
            // convention needed for a single-node system, where a node is
            // responsible for every key.
            return true;
        }
        if lo < hi {
            lo <= self && self < hi
        } else {
            // Wraps around 1.0.
            self >= lo || self < hi
        }
    }

    /// Midpoint of the clockwise arc from `self` to `other`.
    pub fn midpoint_cw(self, other: Label) -> Label {
        let d = self.cw_distance(other);
        Label(self.0.wrapping_add(d / 2))
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L({:.6})", self.to_f64())
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constants() {
        assert_eq!(Label::ZERO.to_f64(), 0.0);
        assert!((Label::HALF.to_f64() - 0.5).abs() < 1e-12);
        // `to_f64` is display-only; rounding may take MAX to exactly 1.0.
        assert!(Label::MAX.to_f64() <= 1.0);
        assert!(Label::MAX.to_f64() > 0.999);
    }

    #[test]
    fn from_f64_roundtrip() {
        for x in [0.0, 0.1, 0.25, 0.5, 0.75, 0.999] {
            let l = Label::from_f64(x);
            assert!((l.to_f64() - x).abs() < 1e-9, "{x}");
        }
        // Out-of-range values are clamped.
        assert_eq!(Label::from_f64(-1.0), Label::ZERO);
        assert!(Label::from_f64(2.0).to_f64() < 1.0);
    }

    #[test]
    fn half_and_half_plus_match_paper_definition() {
        let m = Label::from_f64(0.6);
        assert!((m.half().to_f64() - 0.3).abs() < 1e-9);
        assert!((m.half_plus().to_f64() - 0.8).abs() < 1e-9);
        // l(v) is always in [0, 0.5) and r(v) always in [0.5, 1).
        assert!(m.half().is_left_half());
        assert!(!m.half_plus().is_left_half());
    }

    #[test]
    fn double_inverts_half() {
        let x = Label::from_raw(0x1234_5678_9abc_def0);
        assert_eq!(x.half().double(), Label(x.0 & !1));
        assert_eq!(x.half_plus().double(), Label(x.0 & !1));
    }

    #[test]
    fn debruijn_step_selects_map() {
        let x = Label::from_f64(0.3);
        assert_eq!(x.debruijn_step(false), x.half());
        assert_eq!(x.debruijn_step(true), x.half_plus());
    }

    #[test]
    fn leading_bits_of_half() {
        let bits = Label::HALF.leading_bits(4);
        assert_eq!(bits, vec![true, false, false, false]);
        let bits = Label::from_f64(0.75).leading_bits(2);
        assert_eq!(bits, vec![true, true]);
        assert_eq!(Label::ZERO.leading_bits(3), vec![false, false, false]);
    }

    #[test]
    fn distances_on_ring() {
        let a = Label::from_f64(0.1);
        let b = Label::from_f64(0.9);
        // Clockwise from 0.1 to 0.9 is 0.8 of the ring.
        assert!((a.cw_distance(b) as f64 / 2f64.powi(64) - 0.8).abs() < 1e-9);
        // Counter-clockwise is 0.2.
        assert!((a.ccw_distance(b) as f64 / 2f64.powi(64) - 0.2).abs() < 1e-9);
        assert_eq!(a.ring_distance(b), b.ring_distance(a));
        assert_eq!(a.ring_distance(a), 0);
    }

    #[test]
    fn interval_membership_without_wrap() {
        let lo = Label::from_f64(0.2);
        let hi = Label::from_f64(0.6);
        assert!(Label::from_f64(0.2).in_interval(lo, hi));
        assert!(Label::from_f64(0.4).in_interval(lo, hi));
        assert!(!Label::from_f64(0.6).in_interval(lo, hi));
        assert!(!Label::from_f64(0.1).in_interval(lo, hi));
        assert!(!Label::from_f64(0.9).in_interval(lo, hi));
    }

    #[test]
    fn interval_membership_with_wrap() {
        let lo = Label::from_f64(0.8);
        let hi = Label::from_f64(0.2);
        assert!(Label::from_f64(0.9).in_interval(lo, hi));
        assert!(Label::from_f64(0.1).in_interval(lo, hi));
        assert!(Label::from_f64(0.0).in_interval(lo, hi));
        assert!(!Label::from_f64(0.5).in_interval(lo, hi));
        assert!(!Label::from_f64(0.2).in_interval(lo, hi));
    }

    #[test]
    fn degenerate_interval_is_whole_ring() {
        let x = Label::from_f64(0.33);
        assert!(Label::from_f64(0.7).in_interval(x, x));
        assert!(x.in_interval(x, x));
    }

    #[test]
    fn midpoint_cw_is_inside_arc() {
        let a = Label::from_f64(0.9);
        let b = Label::from_f64(0.1);
        let m = a.midpoint_cw(b);
        assert!(m.in_interval(a, b));
    }

    #[test]
    fn display_formats() {
        let l = Label::from_f64(0.25);
        assert_eq!(format!("{l}"), "0.250000");
        assert!(format!("{l:?}").starts_with("L(0.25"));
    }

    proptest! {
        #[test]
        fn prop_half_lands_in_left_half(raw in any::<u64>()) {
            prop_assert!(Label(raw).half().is_left_half());
        }

        #[test]
        fn prop_half_plus_lands_in_right_half(raw in any::<u64>()) {
            prop_assert!(!Label(raw).half_plus().is_left_half());
        }

        #[test]
        fn prop_halving_preserves_order(a in any::<u64>(), b in any::<u64>()) {
            let (la, lb) = (Label(a), Label(b));
            prop_assert_eq!(la <= lb, la.half() <= lb.half());
            prop_assert_eq!(la <= lb, la.half_plus() <= lb.half_plus());
        }

        #[test]
        fn prop_cw_plus_ccw_is_full_ring(a in any::<u64>(), b in any::<u64>()) {
            let (la, lb) = (Label(a), Label(b));
            // cw + ccw distances wrap to 0 (i.e. a full ring) unless equal.
            prop_assert_eq!(la.cw_distance(lb).wrapping_add(la.ccw_distance(lb)), 0);
        }

        #[test]
        fn prop_interval_halves_partition(x in any::<u64>(), lo in any::<u64>(), hi in any::<u64>()) {
            prop_assume!(lo != hi);
            let (x, lo, hi) = (Label(x), Label(lo), Label(hi));
            // Every point is in exactly one of [lo, hi) and [hi, lo).
            prop_assert!(x.in_interval(lo, hi) ^ x.in_interval(hi, lo));
        }

        #[test]
        fn prop_debruijn_step_halves_absolute_distance(a in any::<u64>(), b in any::<u64>(), bit in any::<bool>()) {
            // Distance halving: the maps x ↦ x/2 and x ↦ (x+1)/2 contract the
            // *absolute* (non-wrapping) difference between two points by a
            // factor of 2 (up to one ulp of rounding).
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let before = hi - lo;
            let la = Label(lo).debruijn_step(bit);
            let lb = Label(hi).debruijn_step(bit);
            let after = lb.raw() - la.raw();
            prop_assert!(after <= before / 2 + 1);
            prop_assert!(after + 1 >= before / 2);
        }
    }
}
