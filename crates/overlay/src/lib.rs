//! # skueue-overlay — the Linearized De Bruijn network (LDB)
//!
//! Section II of the Skueue paper defines the overlay on which everything
//! else runs:
//!
//! * every process `v` emulates **three virtual nodes** — a middle node
//!   `m(v)` whose label is a pseudorandom hash of `v.id` in `[0, 1)`, a left
//!   node `l(v)` with label `m(v)/2` and a right node `r(v)` with label
//!   `(m(v)+1)/2`;
//! * all virtual nodes are arranged on a **sorted cycle** by label (linear
//!   edges), and the three nodes of a process are mutually connected
//!   (virtual edges);
//! * routing a message to the predecessor of any point `p ∈ [0,1)` takes
//!   `O(log n)` rounds w.h.p. (Lemma 3) by combining De-Bruijn-style
//!   *distance-halving* hops over the virtual edges with short linear walks;
//! * the nodes implicitly form an **aggregation tree** rooted at the
//!   leftmost node (the *anchor*): every node's parent is its leftmost
//!   neighbour (Section III-B), and the tree has height `O(log n)` w.h.p.
//!   (Corollary 6).
//!
//! This crate implements the label arithmetic, the hash functions, the
//! static topology builder used to bootstrap simulations, the local
//! neighbourhood view maintained by protocol nodes, the routing rule, and
//! the aggregation-tree parent/children rules.  It contains **no protocol
//! state**; `skueue-core` layers batches, stages and join/leave on top.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregation;
pub mod hash;
pub mod label;
pub mod ldb;
pub mod routing;
pub mod vnode;

pub use aggregation::{
    aggregation_child_set, aggregation_children, aggregation_parent, ChildSet, TreeNeighbors,
};
pub use hash::LabelHasher;
pub use label::Label;
pub use ldb::{Topology, TopologyError, VirtualNodeInfo};
pub use routing::{
    recommended_bit_budget, route_step, LocalView, NeighborInfo, RouteAction, RouteBuffer,
    RouteProgress,
};
pub use vnode::{VKind, VirtualId};
