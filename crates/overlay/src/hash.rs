//! Publicly known pseudorandom hash functions.
//!
//! The paper assumes two such functions: one mapping process identifiers to
//! middle-node labels, and one mapping DHT positions `p ∈ ℕ₀` to keys
//! `k(p) ∈ [0, 1)`.  Both are realised here as keyed SplitMix64-style
//! mixers.  The functions are deterministic, stable across runs and
//! dependency versions, and statistically close to uniform — which is what
//! the fairness results (Lemma 4, Corollary 19) rely on.

use crate::label::Label;
use serde::{Deserialize, Serialize};
use skueue_sim::ids::ProcessId;

#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A keyed hash that maps identifiers and positions onto the unit ring.
///
/// Two hashers with the same seed agree on every input; different seeds give
/// (statistically) independent placements — the test-suite uses this to check
/// that results do not depend on one lucky hash layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelHasher {
    seed: u64,
}

impl LabelHasher {
    /// Creates a hasher with the given seed.
    pub fn new(seed: u64) -> Self {
        LabelHasher { seed }
    }

    /// The seed of this hasher.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Hashes an arbitrary 64-bit value to a label.
    #[inline]
    pub fn hash_u64(&self, value: u64) -> Label {
        // Two rounds of mixing keyed by the seed; the golden-ratio constant
        // decorrelates consecutive integers.
        let x = value
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.seed.rotate_left(17) ^ 0xD1B5_4A32_D192_ED03);
        Label(mix(mix(x) ^ self.seed))
    }

    /// Label of the *middle* virtual node of a process ("applying a publicly
    /// known pseudorandom hash function on the identifier `v.id`").
    #[inline]
    pub fn process_label(&self, id: ProcessId) -> Label {
        self.hash_u64(id.raw() ^ 0xA076_1D64_78BD_642F)
    }

    /// DHT key `k(p)` of queue position `p` (Section II-B).
    #[inline]
    pub fn position_key(&self, position: u64) -> Label {
        self.hash_u64(position ^ 0xE703_7ED1_A0B4_28DB)
    }

    /// Key of a stack entry: the stack variant stores elements under the pair
    /// `(position, ticket)`; the *placement* in the DHT is by position only
    /// (Section VI), so this simply delegates to [`Self::position_key`].
    #[inline]
    pub fn stack_position_key(&self, position: u64) -> Label {
        self.position_key(position)
    }

    /// Anchor shard a label belongs to, for a system running `shards` anchor
    /// shards: a *splittable* member of this hash family — the label is
    /// re-mixed under the same seed and the result multiply-shifted into
    /// `0..shards` — so shard membership is (statistically) independent of
    /// the label's ring position.  That independence matters: each shard's
    /// nodes must stay uniformly spread over the unit ring, or one node per
    /// shard would own almost the whole key interval and the DHT fairness of
    /// Lemma 4 would collapse.  `shards == 0` is treated as 1.
    #[inline]
    pub fn shard_of_label(&self, label: Label, shards: u32) -> u32 {
        if shards <= 1 {
            return 0;
        }
        let mixed = self.hash_u64(label.raw() ^ 0x5A4D_A9C1_55AA_D007).raw();
        ((mixed as u128 * shards as u128) >> 64) as u32
    }
}

impl Default for LabelHasher {
    fn default() -> Self {
        LabelHasher::new(0x534B_5545_5545_0001) // "SKUEUE"-flavoured default seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn deterministic() {
        let h = LabelHasher::new(42);
        assert_eq!(h.process_label(ProcessId(7)), h.process_label(ProcessId(7)));
        assert_eq!(h.position_key(123), h.position_key(123));
    }

    #[test]
    fn different_inputs_differ() {
        let h = LabelHasher::new(42);
        assert_ne!(h.process_label(ProcessId(1)), h.process_label(ProcessId(2)));
        assert_ne!(h.position_key(1), h.position_key(2));
        assert_ne!(h.process_label(ProcessId(1)), h.position_key(1));
    }

    #[test]
    fn different_seeds_differ() {
        let a = LabelHasher::new(1);
        let b = LabelHasher::new(2);
        let collisions = (0..1000u64)
            .filter(|&i| a.position_key(i) == b.position_key(i))
            .count();
        assert_eq!(collisions, 0);
    }

    #[test]
    fn positions_spread_roughly_uniformly() {
        // Consistent hashing fairness (Lemma 4) needs the key distribution to
        // be close to uniform. Bucket 10_000 consecutive positions into 16
        // bins and check no bin is wildly over- or under-full.
        let h = LabelHasher::default();
        let mut bins = [0usize; 16];
        let n = 10_000u64;
        for p in 0..n {
            let key = h.position_key(p);
            bins[(key.raw() >> 60) as usize] += 1;
        }
        let expected = n as f64 / 16.0;
        for &count in &bins {
            assert!(
                (count as f64) > expected * 0.8 && (count as f64) < expected * 1.2,
                "bin count {count} deviates too much from {expected}"
            );
        }
    }

    #[test]
    fn process_labels_spread_roughly_uniformly() {
        let h = LabelHasher::default();
        let mut bins = [0usize; 8];
        let n = 8_000u64;
        for p in 0..n {
            bins[(h.process_label(ProcessId(p)).raw() >> 61) as usize] += 1;
        }
        let expected = n as f64 / 8.0;
        for &count in &bins {
            assert!((count as f64) > expected * 0.8 && (count as f64) < expected * 1.2);
        }
    }

    #[test]
    fn default_seed_is_fixed() {
        assert_eq!(LabelHasher::default().seed(), LabelHasher::default().seed());
    }

    proptest! {
        #[test]
        fn prop_no_accidental_identity(v in any::<u64>()) {
            // The hash should not be the identity / a trivial shift for any input.
            let h = LabelHasher::new(99);
            prop_assert_ne!(h.hash_u64(v).raw(), v);
        }

        #[test]
        fn prop_consecutive_positions_far_apart_on_average(p in 0u64..u64::MAX - 1) {
            // Not a strict guarantee per pair, but gross clustering of
            // consecutive keys would break fairness; require that at least the
            // pair is not identical.
            let h = LabelHasher::default();
            prop_assert_ne!(h.position_key(p), h.position_key(p + 1));
        }
    }
}
