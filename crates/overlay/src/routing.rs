//! Routing in the Linearized De Bruijn network (Lemma 3).
//!
//! A message addressed to a point `p ∈ [0, 1)` must reach the node
//! *responsible* for `p`, i.e. the node `u` with `u ≤ p < succ(u)` on the
//! cycle.  Following the continuous–discrete approach of Naor/Wieder that the
//! paper's LDB is based on, routing proceeds in two phases:
//!
//! 1. **Distance-halving phase.**  The message carries the first
//!    `k ≈ log₂ n` bits of the target.  Whenever the message is at a
//!    *middle* virtual node `m(u)`, it consumes the next bit `b` and hops
//!    over the virtual edge to `l(u)` (if `b = 0`) or `r(u)` (if `b = 1`) —
//!    whose labels are exactly `(m(u)+b)/2`.  At a left/right node the
//!    message walks one linear hop towards its successor, looking for the
//!    next middle node (middle nodes make up a third of the cycle, so this
//!    costs O(1) hops in expectation).  After all `k` bits are consumed the
//!    message sits within distance `O(2^{-k} + \max\text{gap})` of the
//!    target.
//! 2. **Linear phase.**  The message walks along the cycle (in the shorter
//!    direction) until it reaches the responsible node.
//!
//! Both phases use only the *local* neighbourhood knowledge captured in
//! [`LocalView`]: the node's own label/kind, its cycle predecessor and
//! successor, and its process's two sibling virtual nodes.  The total hop
//! count is `O(log n)` w.h.p.; the property-based tests in `ldb.rs` and the
//! `routing_hops` benchmark check this empirically.

use crate::label::Label;
use crate::vnode::{VKind, VirtualId};
use serde::{Deserialize, Serialize};
use skueue_sim::ids::NodeId;

/// What one node knows about one of its neighbours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NeighborInfo {
    /// Simulator address of the neighbour.
    pub node: NodeId,
    /// Virtual identity (process + kind) of the neighbour.
    pub vid: VirtualId,
    /// Label of the neighbour.
    pub label: Label,
}

impl NeighborInfo {
    /// Creates a neighbour record.
    pub fn new(node: NodeId, vid: VirtualId, label: Label) -> Self {
        NeighborInfo { node, vid, label }
    }

    /// The virtual-node kind of this neighbour.
    pub fn kind(&self) -> VKind {
        self.vid.kind
    }
}

/// The local neighbourhood a virtual node maintains: itself, its cycle
/// predecessor and successor, and the three virtual nodes of its own process
/// (reachable over virtual edges).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocalView {
    /// This node.
    pub me: NeighborInfo,
    /// Cycle predecessor (`pred(v)`).
    pub pred: NeighborInfo,
    /// Cycle successor (`succ(v)`).
    pub succ: NeighborInfo,
    /// The emulating process's three virtual nodes, indexed by
    /// [`VKind::index`]; includes this node itself.
    pub siblings: [NeighborInfo; 3],
    /// Optional **nearest-middle finger**: the closest *middle* virtual node
    /// in successor direction.  When present, the distance-halving phase
    /// jumps straight to it instead of walking the expected ~2 successor
    /// hops searching for a middle — the same node the walk would have
    /// reached, in one hop.  Purely an optimisation: routing is correct with
    /// `None` (the walk) and with a stale finger (any middle consumes the
    /// bit; the remaining bits still contract the distance).  Populated by
    /// `Topology::local_view_with_fingers`; flag-gated and off by default.
    pub middle_finger: Option<NeighborInfo>,
}

impl LocalView {
    /// The kind of this node.
    pub fn kind(&self) -> VKind {
        self.me.vid.kind
    }

    /// The sibling virtual node of the given kind (possibly `self.me`).
    pub fn sibling(&self, kind: VKind) -> &NeighborInfo {
        &self.siblings[kind.index()]
    }

    /// True if this node is responsible for `key`, i.e. `key ∈ [me, succ)`
    /// on the ring.
    pub fn is_responsible_for(&self, key: Label) -> bool {
        if self.me.node == self.succ.node {
            // Single node on the cycle: responsible for everything.
            return true;
        }
        key.in_interval(self.me.label, self.succ.label)
    }

    /// True if this node is the anchor (leftmost node): its predecessor edge
    /// wraps around the cycle.
    pub fn is_anchor(&self) -> bool {
        self.me.node == self.pred.node || self.pred.label > self.me.label
    }

    /// True if this node has the maximum label: its successor edge wraps.
    pub fn successor_wraps(&self) -> bool {
        self.me.node == self.succ.node || self.succ.label < self.me.label
    }
}

/// Routing state carried inside a message addressed to a point on the ring.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteProgress {
    /// The destination point.
    pub target: Label,
    /// Remaining distance-halving bits, consumed from the back
    /// (`bits.pop()` yields the bit to apply next).
    pub bits: Vec<bool>,
    /// Hops taken so far (incremented by the forwarding node; used for the
    /// Lemma 3 / Theorem 15 measurements).
    pub hops: u32,
}

impl RouteProgress {
    /// Creates routing state for `target` with `bit_budget` distance-halving
    /// bits.
    ///
    /// The bits are the most significant `bit_budget` bits of the target,
    /// stored so that the *last* element is applied first (the
    /// distance-halving walk builds the target prefix from its least
    /// significant routing bit upwards).
    pub fn new(target: Label, bit_budget: u32) -> Self {
        RouteProgress {
            target,
            bits: target.leading_bits(bit_budget),
            hops: 0,
        }
    }

    /// Routing state that skips the distance-halving phase entirely and
    /// walks linearly — used as a baseline/ablation and for tiny systems.
    pub fn linear_only(target: Label) -> Self {
        RouteProgress {
            target,
            bits: Vec::new(),
            hops: 0,
        }
    }

    /// Whether the distance-halving phase is finished.
    pub fn in_linear_phase(&self) -> bool {
        self.bits.is_empty()
    }
}

/// Recommended distance-halving bit budget for a system of `n_processes`
/// processes (`3·n` virtual nodes): `max(⌈log₂(3n)⌉ − 3, 3)`.
///
/// Each halving bit costs ≈ 3 hops, not 1: only middle nodes can consume a
/// bit, and middles make up a third of the cycle, so every virtual hop is
/// preceded by an expected ~2-hop linear search.  A bit is therefore only
/// worth spending while it still removes ≥ 3 expected hops from the final
/// linear walk — i.e. while `2^-k` is ≥ several node gaps.  Stopping ~3 bits
/// short of `log₂(3n)` leaves an expected final walk of ~4 hops and cuts
/// ~10 wasted search hops per operation; the fig2 throughput sweep at
/// n ∈ {10³, 3·10³} measures ~20–30 % fewer total hops (and wall time) than
/// the previous `⌈log₂(3n)⌉ + 2`, whose last 5 bits bought precision finer
/// than the mean gap — pure overhead.
pub fn recommended_bit_budget(n_processes: usize) -> u32 {
    let nodes = (n_processes.max(1) * 3) as u64;
    (64 - nodes.leading_zeros()).saturating_sub(3).max(3)
}

/// The decision a node takes for a message it is routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteAction {
    /// The current node is responsible for the target — deliver locally.
    Deliver,
    /// Forward to the given node.
    Forward(NodeId),
}

/// Computes the routing decision of the node described by `view` for a
/// message with the given routing state.
///
/// May consume one distance-halving bit from `progress`; never modifies the
/// target. The caller is responsible for incrementing `progress.hops` when it
/// actually forwards the message.
pub fn route_step(view: &LocalView, progress: &mut RouteProgress) -> RouteAction {
    // Delivery check first: responsibility can be reached early (or the
    // distance-halving phase may be unnecessary altogether).
    if view.is_responsible_for(progress.target) {
        return RouteAction::Deliver;
    }

    if !progress.in_linear_phase() {
        if view.kind() == VKind::Middle {
            // Consume the next bit over the virtual edge: l(v) has label
            // m(v)/2 and r(v) has label (m(v)+1)/2 — exactly the
            // distance-halving step applied to this node's label.
            let bit = progress.bits.pop().expect("checked non-empty");
            let next = if bit {
                view.sibling(VKind::Right)
            } else {
                view.sibling(VKind::Left)
            };
            return RouteAction::Forward(next.node);
        }
        // Not at a middle node: jump over the nearest-middle finger when the
        // node maintains one (one hop instead of an expected ~2-hop search);
        // otherwise walk one linear hop towards the successor, searching for
        // the next middle node (expected O(1) hops).  The jump is only taken
        // when the target does not lie in the skipped `[me, finger)` arc —
        // otherwise the responsible node is among the skipped ones and the
        // walk delivers directly, while the jump would spend the remaining
        // halving bits detouring away from it.
        if let Some(finger) = &view.middle_finger {
            if !progress.target.in_interval(view.me.label, finger.label) {
                return RouteAction::Forward(finger.node);
            }
        }
        return RouteAction::Forward(view.succ.node);
    }

    // Linear phase: walk along the cycle in the direction with the shorter
    // ring distance to the target.
    let cw = view.me.label.cw_distance(progress.target);
    let ccw = view.me.label.ccw_distance(progress.target);
    if cw <= ccw {
        RouteAction::Forward(view.succ.node)
    } else {
        RouteAction::Forward(view.pred.node)
    }
}

/// Per-node coalescing buffer for routed payloads: items heading to the same
/// next hop within one node visit are grouped into a single message per
/// neighbour per round.
///
/// This is the structural piece behind the batched DHT layer: Stage-4
/// operations that share the next distance-halving hop (from a middle node
/// there are only *two* possible virtual-edge targets) are buffered here
/// during a visit and flushed as one `DhtBatch` per neighbour at the end of
/// the visit, turning `O(ops)` messages per round into `O(neighbours)`.
/// Replies coalesce the same way, keyed by requester.
///
/// The lane list is a small linear-probe vector (a node talks to a handful
/// of distinct next hops per round).  Lane *entries* are retained across
/// flushes, so the destination table never re-grows; the payload vectors
/// themselves become message payloads on flush and are therefore allocated
/// fresh per batch message — one allocation per (node, destination) per
/// round, which is exactly the message count itself.
#[derive(Debug, Clone)]
pub struct RouteBuffer<T> {
    lanes: Vec<(NodeId, Vec<T>)>,
    /// Number of buffered items across all lanes.
    len: usize,
}

impl<T> Default for RouteBuffer<T> {
    fn default() -> Self {
        RouteBuffer {
            lanes: Vec::new(),
            len: 0,
        }
    }
}

impl<T> RouteBuffer<T> {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        RouteBuffer::default()
    }

    /// Number of buffered items (across all destinations).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of destinations that currently have buffered items (= messages
    /// the next [`Self::flush`] will emit).
    pub fn lanes(&self) -> usize {
        self.lanes
            .iter()
            .filter(|(_, items)| !items.is_empty())
            .count()
    }

    /// Buffers `item` for the given next hop.
    pub fn push(&mut self, to: NodeId, item: T) {
        self.len += 1;
        for (node, items) in &mut self.lanes {
            if *node == to {
                items.push(item);
                return;
            }
        }
        self.lanes.push((to, vec![item]));
    }

    /// Drains the buffer, invoking `emit` once per destination with the
    /// batched items (in push order).  Lane entries (and therefore the
    /// destination ordering, which is first-contact order — deterministic
    /// for a deterministic caller) are retained for reuse; the payload
    /// vectors are moved out because they become message payloads.
    pub fn flush(&mut self, mut emit: impl FnMut(NodeId, Vec<T>)) {
        if self.len == 0 {
            return;
        }
        self.len = 0;
        for (node, items) in &mut self.lanes {
            if !items.is_empty() {
                emit(*node, std::mem::take(items));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skueue_sim::ids::ProcessId;

    fn info(node: u64, process: u64, kind: VKind, label: f64) -> NeighborInfo {
        NeighborInfo::new(
            NodeId(node),
            VirtualId::new(ProcessId(process), kind),
            Label::from_f64(label),
        )
    }

    /// A little two-process neighbourhood around the middle node of process 0
    /// (labels: l0=0.3, m0=0.6, r0=0.8; process 1 middle at 0.65).
    fn middle_view() -> LocalView {
        LocalView {
            me: info(1, 0, VKind::Middle, 0.6),
            pred: info(10, 1, VKind::Left, 0.55),
            succ: info(11, 1, VKind::Middle, 0.65),
            siblings: [
                info(0, 0, VKind::Left, 0.3),
                info(1, 0, VKind::Middle, 0.6),
                info(2, 0, VKind::Right, 0.8),
            ],
            middle_finger: None,
        }
    }

    #[test]
    fn responsibility_interval() {
        let view = middle_view();
        assert!(view.is_responsible_for(Label::from_f64(0.6)));
        assert!(view.is_responsible_for(Label::from_f64(0.64)));
        assert!(!view.is_responsible_for(Label::from_f64(0.65)));
        assert!(!view.is_responsible_for(Label::from_f64(0.1)));
    }

    #[test]
    fn anchor_and_wrap_detection() {
        let mut view = middle_view();
        assert!(!view.is_anchor());
        assert!(!view.successor_wraps());
        view.pred.label = Label::from_f64(0.99);
        assert!(view.is_anchor());
        view.succ.label = Label::from_f64(0.01);
        assert!(view.successor_wraps());
    }

    #[test]
    fn deliver_when_responsible() {
        let view = middle_view();
        let mut progress = RouteProgress::new(Label::from_f64(0.62), 8);
        assert_eq!(route_step(&view, &mut progress), RouteAction::Deliver);
        // Bits are not consumed on delivery.
        assert_eq!(progress.bits.len(), 8);
    }

    #[test]
    fn middle_node_consumes_bit_and_uses_virtual_edge() {
        let view = middle_view();
        // Target 0.1 is nowhere near; first applied bit is the *last* of the
        // leading bits.
        let mut progress = RouteProgress::new(Label::from_f64(0.1), 4);
        let bits_before = progress.bits.clone();
        let action = route_step(&view, &mut progress);
        assert_eq!(progress.bits.len(), 3);
        let consumed = *bits_before.last().unwrap();
        let expected_node = if consumed { NodeId(2) } else { NodeId(0) };
        assert_eq!(action, RouteAction::Forward(expected_node));
    }

    #[test]
    fn non_middle_node_searches_for_middle_via_successor() {
        let view = LocalView {
            me: info(0, 0, VKind::Left, 0.3),
            pred: info(9, 2, VKind::Left, 0.25),
            succ: info(12, 3, VKind::Middle, 0.35),
            siblings: [
                info(0, 0, VKind::Left, 0.3),
                info(1, 0, VKind::Middle, 0.6),
                info(2, 0, VKind::Right, 0.8),
            ],
            middle_finger: None,
        };
        let mut progress = RouteProgress::new(Label::from_f64(0.9), 4);
        assert_eq!(
            route_step(&view, &mut progress),
            RouteAction::Forward(NodeId(12))
        );
        // No bit consumed while searching for a middle node.
        assert_eq!(progress.bits.len(), 4);
    }

    #[test]
    fn middle_finger_short_circuits_the_linear_search() {
        // Same non-middle view, but with a nearest-middle finger two cycle
        // hops ahead: the halving phase jumps straight to it.
        let view = LocalView {
            me: info(0, 0, VKind::Left, 0.3),
            pred: info(9, 2, VKind::Left, 0.25),
            succ: info(12, 3, VKind::Right, 0.35),
            siblings: [
                info(0, 0, VKind::Left, 0.3),
                info(1, 0, VKind::Middle, 0.6),
                info(2, 0, VKind::Right, 0.8),
            ],
            middle_finger: Some(info(14, 4, VKind::Middle, 0.45)),
        };
        let mut progress = RouteProgress::new(Label::from_f64(0.9), 4);
        assert_eq!(
            route_step(&view, &mut progress),
            RouteAction::Forward(NodeId(14)),
            "finger beats the succ walk"
        );
        assert_eq!(progress.bits.len(), 4, "no bit consumed on the jump");
        // The finger is irrelevant in the linear phase…
        let mut progress = RouteProgress::linear_only(Label::from_f64(0.9));
        assert_eq!(
            route_step(&view, &mut progress),
            RouteAction::Forward(NodeId(9)),
            "linear phase still walks the shorter cycle direction"
        );
        // …and at a middle node (which consumes its bit locally).
        let mut with_finger = middle_view();
        with_finger.middle_finger = Some(info(14, 4, VKind::Middle, 0.45));
        let mut progress = RouteProgress::new(Label::from_f64(0.1), 4);
        let action = route_step(&with_finger, &mut progress);
        assert_eq!(progress.bits.len(), 3);
        assert!(matches!(
            action,
            RouteAction::Forward(NodeId(0)) | RouteAction::Forward(NodeId(2))
        ));
    }

    #[test]
    fn linear_phase_walks_in_shorter_direction() {
        let view = middle_view();
        // Target slightly below this node: go to pred.
        let mut progress = RouteProgress::linear_only(Label::from_f64(0.5));
        assert_eq!(
            route_step(&view, &mut progress),
            RouteAction::Forward(NodeId(10))
        );
        // Target slightly above the successor: go to succ.
        let mut progress = RouteProgress::linear_only(Label::from_f64(0.7));
        assert_eq!(
            route_step(&view, &mut progress),
            RouteAction::Forward(NodeId(11))
        );
    }

    #[test]
    fn single_node_cycle_is_responsible_for_everything() {
        let me = info(0, 0, VKind::Middle, 0.4);
        let view = LocalView {
            me,
            pred: me,
            succ: me,
            siblings: [me, me, me],
            middle_finger: None,
        };
        assert!(view.is_responsible_for(Label::from_f64(0.99)));
        assert!(view.is_anchor());
        assert!(view.successor_wraps());
        let mut p = RouteProgress::new(Label::from_f64(0.99), 4);
        assert_eq!(route_step(&view, &mut p), RouteAction::Deliver);
    }

    #[test]
    fn bit_budget_scales_logarithmically() {
        assert!(recommended_bit_budget(1) >= 3);
        let b1k = recommended_bit_budget(1_000);
        let b100k = recommended_bit_budget(100_000);
        // ⌈log₂(3n)⌉ − 3: the last bits of a full log₂(3n) budget buy
        // precision below the mean node gap at ~3 hops apiece (see the
        // function docs), so the recommendation deliberately stops short.
        assert!((8..=10).contains(&b1k), "{b1k}");
        assert!((15..=17).contains(&b100k), "{b100k}");
        assert!(b100k > b1k);
    }

    #[test]
    fn route_buffer_coalesces_per_destination() {
        let mut buf: RouteBuffer<u32> = RouteBuffer::new();
        assert!(buf.is_empty());
        buf.push(NodeId(1), 10);
        buf.push(NodeId(2), 20);
        buf.push(NodeId(1), 11);
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.lanes(), 2);
        let mut flushed: Vec<(NodeId, Vec<u32>)> = Vec::new();
        buf.flush(|to, items| flushed.push((to, items)));
        assert_eq!(
            flushed,
            vec![(NodeId(1), vec![10, 11]), (NodeId(2), vec![20])]
        );
        assert!(buf.is_empty());
        assert_eq!(buf.lanes(), 0);
        // Flushing an empty buffer emits nothing.
        buf.flush(|_, _| panic!("must not emit"));
    }

    #[test]
    fn route_buffer_reuses_lanes_across_flushes() {
        let mut buf: RouteBuffer<u32> = RouteBuffer::new();
        buf.push(NodeId(7), 1);
        buf.flush(|_, _| {});
        // The lane entry for node 7 is retained; pushing again must not grow
        // the lane list.
        buf.push(NodeId(7), 2);
        let mut seen = Vec::new();
        buf.flush(|to, items| seen.push((to, items)));
        assert_eq!(seen, vec![(NodeId(7), vec![2])]);
    }

    #[test]
    fn route_progress_constructors() {
        let p = RouteProgress::new(Label::from_f64(0.75), 2);
        assert_eq!(p.bits, vec![true, true]);
        assert!(!p.in_linear_phase());
        let p = RouteProgress::linear_only(Label::from_f64(0.75));
        assert!(p.in_linear_phase());
        assert_eq!(p.hops, 0);
    }
}
